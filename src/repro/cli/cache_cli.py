"""``repro cache`` — cache-root maintenance.

Subcommands::

    repro cache gc [--max-age 7d] [--dry-run] [--cache-dir DIR]

``gc`` reclaims the debris that fault-tolerant execution deliberately
leaves behind for inspection, once it is old enough that nobody is coming
back for it:

* **quarantined artifacts** — corrupt per-point files that resumed sweeps
  moved to ``quarantine/`` instead of deleting (the operator has had
  ``--max-age`` to look at them);
* **orphaned sweep trees** — ``artifacts/sweeps/<grid>/<label>/``
  directories with no point artifacts *and* no aggregated ``sweep.json``
  (an aborted or override-digest-abandoned run that never produced data);
* **stale atomic-write temp files** — ``.<name>.<pid>.<seq>.tmp`` orphans
  of writers that died mid-write, anywhere under the cache root (these use
  the executor's one-hour staleness floor, never ``--max-age``, so a live
  concurrent writer is never raced).

Everything is age-gated on mtime, ``--dry-run`` prints the plan without
deleting, and the summary reports bytes reclaimed either way.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.experiments.common import default_cache_dir
from repro.runtime.cache import STALE_TMP_SECONDS

_AGE_SUFFIXES = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}
DEFAULT_MAX_AGE = "7d"


def parse_age(raw: str) -> float:
    """Parse ``30s`` / ``10m`` / ``6h`` / ``7d`` (bare number = seconds)."""
    text = str(raw).strip().lower()
    scale = 1.0
    if text and text[-1] in _AGE_SUFFIXES:
        scale = _AGE_SUFFIXES[text[-1]]
        text = text[:-1]
    try:
        seconds = float(text) * scale
        if seconds < 0:
            raise ValueError
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"malformed age {raw!r} — expected e.g. 30s, 10m, 6h or 7d"
        ) from None
    return seconds


def _tree_size(path: Path) -> int:
    if path.is_file():
        try:
            return path.stat().st_size
        except OSError:
            return 0
    total = 0
    for item in path.rglob("*"):
        try:
            if item.is_file():
                total += item.stat().st_size
        except OSError:
            continue
    return total


def _newest_mtime(path: Path) -> float:
    try:
        newest = path.stat().st_mtime
    except OSError:
        return 0.0
    for item in path.rglob("*"):
        try:
            newest = max(newest, item.stat().st_mtime)
        except OSError:
            continue
    return newest


def _collect(
    cache_dir: Path, max_age: float, now: float
) -> List[Tuple[str, Path, int]]:
    """The GC plan: ``(category, path, bytes)`` per reclaimable item."""
    plan: List[Tuple[str, Path, int]] = []
    sweeps = cache_dir / "artifacts" / "sweeps"

    for quarantined in sorted(sweeps.glob("*/*/quarantine/*")):
        try:
            age = now - quarantined.stat().st_mtime
        except OSError:
            continue
        if age >= max_age:
            plan.append(("quarantine", quarantined, _tree_size(quarantined)))

    for label_dir in sorted(sweeps.glob("*/*")):
        if not label_dir.is_dir():
            continue
        has_points = any((label_dir / "points").glob("*.json"))
        has_sweep = (label_dir / "sweep.json").exists()
        if has_points or has_sweep:
            continue
        quarantined_here = {
            path for category, path, _ in plan if category == "quarantine"
            and label_dir in path.parents
        }
        leftovers = [
            item
            for item in label_dir.rglob("*")
            if item.is_file() and item not in quarantined_here
            and not item.name.endswith(".tmp")
        ]
        # Only run_telemetry.json and quarantine debris make a tree an
        # orphan; any other file means someone is storing data here.
        if any(item.name != "run_telemetry.json" for item in leftovers):
            continue
        if now - _newest_mtime(label_dir) >= max_age:
            plan = [
                entry for entry in plan
                if not (entry[0] == "quarantine" and label_dir in entry[1].parents)
            ]
            plan.append(("orphaned-sweep", label_dir, _tree_size(label_dir)))

    if cache_dir.is_dir():
        for tmp in sorted(cache_dir.rglob(".*.tmp")):
            try:
                age = now - tmp.stat().st_mtime
            except OSError:
                continue
            if age >= STALE_TMP_SECONDS:
                plan.append(("stale-tmp", tmp, _tree_size(tmp)))
    return plan


def _reclaim(path: Path) -> bool:
    try:
        if path.is_dir():
            shutil.rmtree(path)
        else:
            path.unlink()
        return True
    except OSError as error:
        print(f"warning: could not remove {path}: {error}", file=sys.stderr)
        return False


def _prune_empty_parents(path: Path, stop: Path) -> None:
    """Remove now-empty ancestor directories up to (not including) ``stop``."""
    parent = path.parent
    while parent != stop and stop in parent.parents:
        try:
            parent.rmdir()  # fails (caught) unless empty — exactly what we want
        except OSError:
            return
        parent = parent.parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro cache", description="cache-root maintenance"
    )
    sub = parser.add_subparsers(dest="cache_command", metavar="SUBCOMMAND", required=True)
    gc = sub.add_parser("gc", help="reclaim aged quarantine files, orphaned "
                        "sweep trees and stale temp files")
    gc.add_argument("--max-age", type=parse_age, default=None, metavar="AGE",
                    help=f"age threshold with s/m/h/d suffix (default: {DEFAULT_MAX_AGE})")
    gc.add_argument("--dry-run", action="store_true",
                    help="print what would be reclaimed without deleting anything")
    gc.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="cache root to collect (default: REPRO_CACHE_DIR)")
    return parser


def _cmd_gc(args: argparse.Namespace) -> int:
    cache_dir = Path(args.cache_dir or default_cache_dir())
    max_age = args.max_age if args.max_age is not None else parse_age(DEFAULT_MAX_AGE)
    plan = _collect(cache_dir, max_age, time.time())
    if not plan:
        print(f"nothing to reclaim under {cache_dir}")
        return 0
    verb = "would reclaim" if args.dry_run else "reclaimed"
    counts: dict = {}
    reclaimed_bytes = 0
    sweeps = cache_dir / "artifacts" / "sweeps"
    for category, path, size in plan:
        if not args.dry_run and not _reclaim(path):
            continue
        counts[category] = counts.get(category, 0) + 1
        reclaimed_bytes += size
        print(f"{verb} {category:<14} {path} ({size} bytes)")
        if not args.dry_run and category in ("quarantine", "orphaned-sweep"):
            _prune_empty_parents(path, sweeps)
    breakdown = ", ".join(f"{count} {name}" for name, count in sorted(counts.items()))
    print(f"\n{verb} {reclaimed_bytes} bytes ({breakdown or 'nothing'})")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.cache_command == "gc":
        return _cmd_gc(args)
    raise AssertionError(f"unhandled subcommand {args.cache_command!r}")


if __name__ == "__main__":
    sys.exit(main())
