"""``repro analyze`` — the longitudinal perf/regression observatory.

Subcommands::

    trajectory   per kernel×scheme×engine throughput series across the
                 committed BENCH_throughput.json entries (host-speed
                 normalized by each entry's live-legacy anchor)
    compare      diff one metric across two sweep label trees, point by
                 point, listing everything that drifted beyond a tolerance
    regress      judge every bracket against its own normalized history;
                 exit 1 when any bracket regressed
    ci           regress + trajectory in one pass, writing a schema-valid
                 verdict.json and trajectory.json for CI to consume

Exit codes: 0 pass (or insufficient data — a young history proves
nothing and must not fail the build), 1 a bracket regressed, 2 bad
usage/unreadable inputs.

Examples::

    python -m repro analyze trajectory --bracket fast
    python -m repro analyze compare smoke fast full --metric speedup
    python -m repro analyze regress --threshold 1.6 --output verdict.json
    python -m repro analyze ci --history BENCH_throughput.json --output-dir out/
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.tables import Table
from repro.obs.compare import (
    DEFAULT_METRIC,
    DEFAULT_TOLERANCE,
    SweepCompareError,
    compare_sweeps,
    load_sweep_points,
)
from repro.obs.regress import (
    DEFAULT_MIN_HISTORY,
    DEFAULT_THRESHOLD,
    STATUS_REGRESS,
    build_verdict,
    detect_regressions,
    validate_verdict,
)
from repro.obs.schema import BenchHistory, BenchSchemaError, load_bench_history
from repro.obs.trajectory import build_trajectories, trajectory_report
from repro.runtime.cache import atomic_write_json

DEFAULT_HISTORY = Path("BENCH_throughput.json")


def _load_history_or_die(path: Path) -> BenchHistory:
    """Load a trajectory file; warnings go to stderr, emptiness is fatal."""
    history = load_bench_history(path)
    for warning in history.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if not history.entries:
        raise BenchSchemaError(
            f"no bench history at {path} — run `repro bench` to record an entry"
        )
    return history


def _history_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--history", type=Path, default=DEFAULT_HISTORY, metavar="PATH",
        help="trajectory file to analyze (default: ./BENCH_throughput.json)",
    )


def _regress_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD, metavar="RATIO",
        help="slowdown ratio that fails a bracket: regress when the latest "
             "normalized value drops below 1/RATIO x the baseline median "
             f"(default {DEFAULT_THRESHOLD})",
    )
    parser.add_argument(
        "--min-history", type=int, default=DEFAULT_MIN_HISTORY, metavar="N",
        help="normalized points a bracket needs before it can pass or "
             f"regress; fewer is insufficient-data (default {DEFAULT_MIN_HISTORY})",
    )


def _cmd_trajectory(args: argparse.Namespace) -> int:
    history = _load_history_or_die(args.history)
    trajectories = build_trajectories(history)
    if args.bracket:
        trajectories = {
            bracket: trajectory
            for bracket, trajectory in trajectories.items()
            if args.bracket in bracket
        }
        if not trajectories:
            print(f"error: no bracket matches {args.bracket!r}", file=sys.stderr)
            return 2
    if args.json:
        report = trajectory_report(history)
        if args.bracket:
            report["brackets"] = {
                bracket: value
                for bracket, value in report["brackets"].items()
                if args.bracket in bracket
            }
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    table = Table(
        title=f"Throughput trajectories — {args.history} "
              f"({len(history.entries)} entries)",
        columns=["bracket", "points", "first c/s", "latest c/s",
                 "norm first", "norm latest", "trend"],
    )
    for trajectory in trajectories.values():
        normalized = trajectory.normalized_values
        trend = (
            f"{normalized[-1] / normalized[0]:.2f}x"
            if len(normalized) >= 2 and normalized[0] > 0 else "-"
        )
        table.add_row(
            trajectory.bracket,
            len(trajectory.points),
            f"{trajectory.points[0].cycles_per_second:,.0f}",
            f"{trajectory.points[-1].cycles_per_second:,.0f}",
            f"{normalized[0]:.3f}" if normalized else "-",
            f"{normalized[-1]:.3f}" if normalized else "-",
            trend,
        )
    print(table.to_text())
    print(f"\n{len(trajectories)} brackets (trend = latest/first normalized; "
          f"normalized = cycles/s over the entry's live-legacy anchor)")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    cache_a = args.cache_dir
    cache_b = args.cache_dir_b or args.cache_dir
    points_a = load_sweep_points(cache_a, args.grid, args.label_a)
    points_b = load_sweep_points(cache_b, args.grid, args.label_b)
    comparison = compare_sweeps(
        points_a, points_b, metric=args.metric, tolerance=args.tolerance,
        label_a=args.label_a, label_b=args.label_b,
    )
    if args.json:
        print(json.dumps(comparison, indent=2, sort_keys=True))
        return 0
    table = Table(
        title=f"Sweep comparison — {args.grid}: {args.label_a} vs {args.label_b} "
              f"({args.metric})",
        columns=["point", args.label_a, args.label_b, "delta", "relative", "drift"],
    )
    for row in comparison["points"]:
        table.add_row(
            row["point_id"],
            f"{row[args.label_a]:.4f}",
            f"{row[args.label_b]:.4f}",
            f"{row['delta']:+.4f}",
            f"{row['relative']:+.2%}",
            "DRIFTED" if row["drifted"] else "",
        )
    print(table.to_text())
    drifted = comparison["drifted"]
    print(f"\n{comparison['common']} common points, "
          f"{len(drifted)} drifted beyond {args.tolerance:.0%} "
          f"({len(comparison['only_a'])} only in {args.label_a}, "
          f"{len(comparison['only_b'])} only in {args.label_b})")
    for point_id in drifted:
        print(f"  drifted: {point_id}")
    return 0


def _judge(args: argparse.Namespace):
    history = _load_history_or_die(args.history)
    trajectories = build_trajectories(history)
    verdicts = detect_regressions(
        trajectories, threshold=args.threshold, min_history=args.min_history
    )
    verdict = build_verdict(
        verdicts, threshold=args.threshold, source=str(args.history)
    )
    validate_verdict(verdict)
    return history, verdict


def _print_verdict(verdict: dict) -> None:
    counts = verdict["counts"]
    print(
        f"verdict: {verdict['status']} — {counts['pass']} pass, "
        f"{counts['regress']} regress, "
        f"{counts['insufficient_data']} insufficient-data "
        f"(threshold {verdict['threshold']:.2f}x, source {verdict['source']})"
    )
    for bracket in verdict["brackets"]:
        if bracket["status"] == STATUS_REGRESS:
            print(f"regress: {bracket['bracket']} — {bracket['reason']}")


def _cmd_regress(args: argparse.Namespace) -> int:
    _, verdict = _judge(args)
    if args.json:
        print(json.dumps(verdict, indent=2, sort_keys=True))
    else:
        _print_verdict(verdict)
    if args.output is not None:
        atomic_write_json(args.output, verdict, indent=2, trailing_newline=True)
        if not args.json:
            print(f"wrote {args.output}")
    return 1 if verdict["status"] == STATUS_REGRESS else 0


def _cmd_ci(args: argparse.Namespace) -> int:
    history, verdict = _judge(args)
    args.output_dir.mkdir(parents=True, exist_ok=True)
    verdict_path = atomic_write_json(
        args.output_dir / "verdict.json", verdict, indent=2, trailing_newline=True
    )
    trajectory_path = atomic_write_json(
        args.output_dir / "trajectory.json", trajectory_report(history),
        indent=2, trailing_newline=True,
    )
    _print_verdict(verdict)
    print(f"wrote {verdict_path} and {trajectory_path}")
    return 1 if verdict["status"] == STATUS_REGRESS else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description="longitudinal perf/regression observatory over the "
                    "committed bench + sweep artifacts",
    )
    sub = parser.add_subparsers(dest="command", metavar="SUBCOMMAND")

    trajectory = sub.add_parser(
        "trajectory", help="per kernel×scheme×engine throughput series"
    )
    _history_flag(trajectory)
    trajectory.add_argument(
        "--bracket", default=None, metavar="SUBSTR",
        help="only brackets whose kernel:scheme:engine key contains SUBSTR",
    )
    trajectory.add_argument("--json", action="store_true",
                            help="emit the machine-readable report instead")

    compare = sub.add_parser(
        "compare", help="diff one metric across two sweep label trees"
    )
    compare.add_argument("grid", help="sweep grid name (see `repro sweep list`)")
    compare.add_argument("label_a", help="first label, e.g. fast")
    compare.add_argument("label_b", help="second label, e.g. full")
    compare.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache root holding both trees (default: REPRO_CACHE_DIR)",
    )
    compare.add_argument(
        "--cache-dir-b", default=None, metavar="DIR",
        help="separate cache root for the second label (tree-vs-tree diffs)",
    )
    compare.add_argument(
        "--metric", default=DEFAULT_METRIC,
        help=f"point metric to diff (default {DEFAULT_METRIC})",
    )
    compare.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE, metavar="REL",
        help="relative drift beyond which a point is flagged "
             f"(default {DEFAULT_TOLERANCE})",
    )
    compare.add_argument("--json", action="store_true",
                         help="emit the machine-readable comparison instead")

    regress = sub.add_parser(
        "regress", help="judge every bracket against its normalized history"
    )
    _history_flag(regress)
    _regress_flags(regress)
    regress.add_argument(
        "--output", type=Path, default=None, metavar="PATH",
        help="also write the verdict document to PATH",
    )
    regress.add_argument("--json", action="store_true",
                         help="emit the verdict document instead of the summary")

    ci = sub.add_parser(
        "ci", help="regress + trajectory, writing verdict.json for CI"
    )
    _history_flag(ci)
    _regress_flags(ci)
    ci.add_argument(
        "--output-dir", type=Path, default=Path("analyze-report"), metavar="DIR",
        help="directory for verdict.json + trajectory.json "
             "(default: ./analyze-report)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    commands = {
        "trajectory": _cmd_trajectory,
        "compare": _cmd_compare,
        "regress": _cmd_regress,
        "ci": _cmd_ci,
    }
    if args.command == "compare":
        from repro.experiments.common import default_cache_dir

        if args.cache_dir is None:
            args.cache_dir = str(default_cache_dir())
    try:
        return commands[args.command](args)
    except (BenchSchemaError, SweepCompareError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
