"""``python -m repro`` — the unified entry point of the reproduction.

Examples::

    python -m repro list --workloads
    python -m repro run fig07 fig08 --fast
    python -m repro sweep run l1-trace --fast --shard 1/2 --resume
    python -m repro trace gen --out /tmp/traces
    python -m repro run-all --fast --jobs 4 --cache-dir /tmp/poise
    python -m repro serve start --workers 2 --cache-dir /tmp/poise
    python -m repro serve submit l1-trace --fast --wait
    python -m repro cache gc --max-age 7d --dry-run
    python -m repro report --fast
    python -m repro bench --dry-run
    python -m repro pretrain --fast --output /tmp/model.json
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.analysis.tables import Table
from repro.cli import runner
from repro.experiments import registry
from repro.experiments.common import default_cache_dir
from repro.runtime.executor import SweepExecutor
from repro.version import __version__


def _jobs_arg(raw: str) -> int:
    """``--jobs``: a non-negative integer or ``auto``; 0/auto = one per core.

    Matches the semantics of the ``REPRO_JOBS`` environment variable and of
    ``repro pretrain --jobs``.
    """
    value = raw.strip().lower()
    if value == "auto":
        return os.cpu_count() or 1
    try:
        parsed = int(value)
        if parsed < 0:
            raise ValueError
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--jobs must be a non-negative integer or 'auto', got {raw!r}"
        )
    return parsed if parsed > 0 else (os.cpu_count() or 1)


def _add_scale_flags(parser: argparse.ArgumentParser) -> None:
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument(
        "--fast", action="store_true",
        help="scaled-down test configuration (seconds per experiment)",
    )
    scale.add_argument(
        "--full", action="store_true",
        help="paper-shaped configuration (the default; minutes per experiment)",
    )


def _add_run_flags(parser: argparse.ArgumentParser) -> None:
    _add_scale_flags(parser)
    parser.add_argument(
        "--jobs", type=_jobs_arg, default=None, metavar="N",
        help="fan experiments out over N worker processes; 0 or 'auto' = one "
        "per CPU core (default: serial, or the REPRO_JOBS environment variable)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECS",
        help="per-experiment wall-clock timeout when running in parallel; a "
        "stalled worker is abandoned and the experiment retried (default: "
        "REPRO_TIMEOUT, or no timeout)",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retry budget per experiment for transient failures — worker "
        "death, timeouts, OSError (default: REPRO_RETRIES, or 2)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="override the artefact/result cache root (default: REPRO_CACHE_DIR "
        "or ~/.cache/poise-repro); artifacts land under DIR/artifacts/<label>/",
    )
    parser.add_argument(
        "--print-tables", action="store_true",
        help="print every experiment's full tables, not just the summary line",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Poise (HPCA'19) reproduction — experiment runner.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", metavar="COMMAND")

    list_parser = subparsers.add_parser(
        "list", help="catalogue of every registered experiment"
    )
    list_parser.add_argument(
        "--workloads", action="store_true",
        help="also print the benchmark/suite catalog (trace vs. synthetic)",
    )

    run_parser = subparsers.add_parser(
        "run", help="run one or more experiments and emit JSON artifacts"
    )
    run_parser.add_argument(
        "ids", nargs="+", metavar="ID",
        help="experiment ids (see `repro list`), e.g. fig07 table02",
    )
    _add_run_flags(run_parser)

    run_all_parser = subparsers.add_parser(
        "run-all", help="run every registered experiment"
    )
    _add_run_flags(run_all_parser)

    report_parser = subparsers.add_parser(
        "report", help="summarise previously emitted artifacts"
    )
    _add_scale_flags(report_parser)
    report_parser.add_argument("--cache-dir", default=None, metavar="DIR")

    subparsers.add_parser(
        "bench", help="simulator throughput microbenchmarks", add_help=False
    )
    subparsers.add_parser(
        "pretrain", help="offline training of the Poise regression model", add_help=False
    )
    subparsers.add_parser(
        "trace", help="trace capture/replay/gen/info tools", add_help=False
    )
    subparsers.add_parser(
        "sweep", help="declarative scenario-grid sweeps (run|plan|report|list)",
        add_help=False,
    )
    subparsers.add_parser(
        "analyze",
        help="longitudinal perf/regression observatory (trajectory|compare|regress|ci)",
        add_help=False,
    )
    subparsers.add_parser(
        "serve",
        help="crash-safe simulation-as-a-service daemon "
        "(start|submit|status|result|cancel|jobs|health|drain)",
        add_help=False,
    )
    subparsers.add_parser(
        "cache", help="cache-root maintenance (gc)", add_help=False
    )
    return parser


def _label(args: argparse.Namespace) -> str:
    return "fast" if getattr(args, "fast", False) else "full"


def _cache_dir(args: argparse.Namespace) -> str:
    if getattr(args, "cache_dir", None):
        # Export so every component that resolves the default — including
        # sweep workers — agrees with the flag.
        os.environ["REPRO_CACHE_DIR"] = args.cache_dir
        return args.cache_dir
    return str(default_cache_dir())


def _cmd_list(workloads: bool = False) -> int:
    if workloads:
        from repro.workloads.registry import all_benchmarks

        benchmarks = Table(
            title="Registered workloads",
            columns=["benchmark", "suite", "role", "kernels", "kind", "description"],
        )
        trace_count = 0
        for benchmark in all_benchmarks().values():
            is_trace = benchmark.role == "trace"
            trace_count += is_trace
            benchmarks.add_row(
                benchmark.name, benchmark.suite, benchmark.role, benchmark.num_kernels,
                "trace" if is_trace else "synthetic", benchmark.description,
            )
        print(benchmarks.to_text())
        print(
            f"\n{len(benchmarks.rows)} benchmarks registered "
            f"({trace_count} trace-native, {len(benchmarks.rows) - trace_count} synthetic)\n"
        )
    table = Table(title="Registered experiments", columns=["id", "paper artefact", "title"])
    for experiment in registry.all_experiments():
        table.add_row(experiment.id, experiment.artifact, experiment.title)
    print(table.to_text())
    print(f"\n{len(table.rows)} experiments registered")
    return 0


def _cmd_run(ids: Sequence[str], args: argparse.Namespace) -> int:
    label = _label(args)
    cache_dir = _cache_dir(args)
    ordered: List[str] = []
    for experiment_id in ids:
        registry.get(experiment_id)  # raises KeyError with suggestions
        if experiment_id not in ordered:
            ordered.append(experiment_id)

    schema_failures: List[str] = []

    def _finish(experiment_id: str, payload: dict) -> None:
        """Validate, persist and report one artifact as soon as it exists —
        an interrupt or a later experiment's crash never discards it."""
        experiment = registry.get(experiment_id)
        try:
            experiment.validate_artifact(payload)
            status = "ok"
        except ValueError as error:
            schema_failures.append(f"{experiment_id}: {error}")
            status = "SCHEMA-INVALID"
        path = runner.write_artifact(payload, cache_dir, label)
        print(
            f"{experiment_id:<9} {experiment.artifact:<14} "
            f"{payload['elapsed_seconds']:>8.1f}s  {status}  {path}",
            flush=True,
        )
        if args.print_tables:
            from repro.analysis.tables import ExperimentResult

            print()
            print(ExperimentResult.from_dict(payload).to_text())
            print()

    from repro.obs.telemetry import describe_cache, describe_phases, telemetry_delta, telemetry_snapshot

    telemetry_before = telemetry_snapshot()
    executor = SweepExecutor(jobs=args.jobs, timeout=args.timeout, retries=args.retries)
    job_args = [(experiment_id, label, cache_dir) for experiment_id in ordered]
    if executor.parallel and len(job_args) > 1:
        for experiment_id, payload in zip(
            ordered, executor.map(runner.run_experiment_job, job_args)
        ):
            _finish(experiment_id, payload)
        if executor.last_report is not None and not executor.last_report.clean:
            print(f"\n{executor.last_report.summary()}")
    else:
        for experiment_id, job in zip(ordered, job_args):
            _finish(experiment_id, runner.run_experiment_job(*job))

    # Run telemetry.  The phase timers are per-process (a parallel run
    # reports the parent's share), but the cache counters are complete:
    # pool workers ship their deltas home through the job envelopes
    # (JobReport.worker_cache), merged into the line printed here.
    delta = telemetry_delta(telemetry_before)
    worker_cache = (
        executor.last_report.worker_cache if executor.last_report is not None else None
    )
    if worker_cache:
        combined = {
            key: int(delta["cache"].get(key, 0)) + int(worker_cache.get(key, 0))
            for key in sorted(set(delta["cache"]) | set(worker_cache))
        }
        print(
            f"cache: {describe_cache(combined)} "
            f"(workers: {describe_cache(worker_cache)})"
        )
    else:
        print(f"cache: {describe_cache(delta['cache'])}")
    if delta["phases"]:
        print(f"phases: {describe_phases(delta['phases'])}")

    if schema_failures:
        print("\nartifact schema violations:", file=sys.stderr)
        for failure in schema_failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    label = _label(args)
    cache_dir = _cache_dir(args)
    artifacts = runner.load_artifacts(cache_dir, label)
    directory = runner.artifacts_dir(cache_dir, label)
    if not artifacts:
        print(f"no artifacts under {directory} — run `python -m repro run-all` first")
        return 1
    table = Table(
        title=f"Artifacts ({label} configuration) — {directory}",
        columns=["id", "paper artefact", "tables", "scalars", "elapsed (s)", "created"],
    )
    total = 0.0
    for payload in artifacts:
        elapsed = float(payload.get("elapsed_seconds", 0.0))
        total += elapsed
        table.add_row(
            str(payload.get("experiment_id")),
            str(payload.get("artifact", "?")),
            len(payload.get("tables", [])),
            len(payload.get("scalars", {})),
            elapsed,
            str(payload.get("created", "?")),
        )
    print(table.to_text())
    missing = sorted(
        set(registry.experiment_ids())
        - {str(payload.get("experiment_id")) for payload in artifacts}
    )
    print(f"\n{len(artifacts)} artifacts, {total:.1f}s total simulated wall-clock")
    if missing:
        print(f"missing experiments: {', '.join(missing)}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Fail fast on a bad ambient REPRO_ENGINE: every subcommand simulates
    # sooner or later, and without this check the ValueError only surfaces
    # deep inside build_sm, mid-run, as a traceback.
    from repro.gpu.engine import ENGINE_ENV, resolve_engine

    try:
        resolve_engine()
    except ValueError as error:
        print(f"error: {ENGINE_ENV}: {error}", file=sys.stderr)
        return 2
    # bench/pretrain own their argument parsing entirely (they predate the
    # unified CLI as stand-alone scripts), so dispatch before parsing.
    if argv and argv[0] == "bench":
        from repro.cli.bench import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "pretrain":
        from repro.cli.pretrain import main as pretrain_main

        return pretrain_main(argv[1:])
    if argv and argv[0] == "trace":
        from repro.cli.trace import main as trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "sweep":
        from repro.cli.sweep import main as sweep_main

        return sweep_main(argv[1:])
    if argv and argv[0] == "analyze":
        from repro.cli.analyze import main as analyze_main

        return analyze_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.cli.serve import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "cache":
        from repro.cli.cache_cli import main as cache_main

        return cache_main(argv[1:])

    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "list":
        return _cmd_list(workloads=args.workloads)
    try:
        if args.command == "run":
            return _cmd_run(args.ids, args)
        if args.command == "run-all":
            return _cmd_run(registry.experiment_ids(), args)
        if args.command == "report":
            return _cmd_report(args)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
