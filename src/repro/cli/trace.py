"""``repro trace`` — capture, replay and inspect per-warp address traces.

Subcommands::

    repro trace gen     [--out DIR] [--family NAME]...        # export the trace suite
    repro trace capture BENCHMARK... [--kernel NAME] [--out DIR] [--verify]
    repro trace replay  TRACE_OR_BENCHMARK... [--schemes LIST] [--fast|--full]
    repro trace info    TRACE...

``capture`` runs benchmark kernels to completion on the simulator with the
issued-stream recorder attached and writes ``<kernel>.trc`` files;
``--verify`` re-runs each capture from the trace and asserts the counters
replay bit-identically.  ``replay`` accepts ``.trc`` paths and/or registered
benchmark names (the ``trace`` suite included) and runs them under any of
the evaluation schemes — through exactly the same profiling, caching and
model machinery the experiments use.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.tables import Table
from repro.trace.adapter import TraceKernelSpec, default_trace_filename, trace_kernel_from_file
from repro.trace.capture import capture_kernel_to_file
from repro.trace.codec import TRACE_SUFFIX, TraceFormatError, trace_stats, write_trace
from repro.workloads.generator import generate_kernel_programs
from repro.workloads.registry import all_benchmarks, get_benchmark, trace_benchmarks
from repro.workloads.spec import KernelSpec

DEFAULT_SCHEMES = "gto,swl,pcal,poise,static_best"


def _known_schemes() -> frozenset:
    """Scheme names _build_controller accepts (validated before any heavy
    work, so `--schemes poise,typo` fails fast instead of after training)."""
    from repro.experiments.common import KNOWN_SCHEMES

    return frozenset(KNOWN_SCHEMES)


def _default_out_dir() -> Path:
    from repro.experiments.common import default_cache_dir

    return default_cache_dir() / "traces"


def _add_scale(parser: argparse.ArgumentParser) -> None:
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument("--fast", action="store_true", help="scaled-down test configuration")
    scale.add_argument("--full", action="store_true", help="paper-shaped configuration (default)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro trace", description="trace capture/replay tools"
    )
    sub = parser.add_subparsers(dest="trace_command", metavar="SUBCOMMAND", required=True)

    gen = sub.add_parser("gen", help="export the trace-native workload suite to .trc files")
    gen.add_argument(
        "--out", type=Path, default=None, metavar="DIR",
        help="output directory (default: <cache-dir>/traces)",
    )
    gen.add_argument(
        "--family", action="append", default=None, metavar="NAME",
        help="restrict to one family (repeatable; default: all)",
    )

    capture = sub.add_parser("capture", help="capture benchmark kernels as trace files")
    capture.add_argument("benchmarks", nargs="+", metavar="BENCHMARK")
    capture.add_argument(
        "--kernel", default=None, metavar="NAME", help="capture only this kernel"
    )
    capture.add_argument("--out", type=Path, default=None, metavar="DIR")
    capture.add_argument(
        "--max-cycles", type=int, default=None,
        help="capture-run cycle budget (default: sized from the kernel length)",
    )
    capture.add_argument(
        "--verify", action="store_true",
        help="replay each capture and assert counters are bit-identical",
    )
    _add_scale(capture)

    replay = sub.add_parser("replay", help="run traces/benchmarks under evaluation schemes")
    replay.add_argument(
        "targets", nargs="+", metavar="TRACE|BENCHMARK",
        help=f"{TRACE_SUFFIX} files and/or registered benchmark names",
    )
    replay.add_argument(
        "--schemes", default="gto", metavar="LIST",
        help=f"comma-separated schemes (default: gto; e.g. {DEFAULT_SCHEMES})",
    )
    replay.add_argument("--cache-dir", default=None, metavar="DIR")
    _add_scale(replay)

    info = sub.add_parser("info", help="print trace header, stats and content hash")
    info.add_argument("traces", nargs="+", type=Path, metavar="TRACE")
    info.add_argument(
        "--per-warp", action="store_true", help="also print the per-warp breakdown"
    )
    return parser


# ---------------------------------------------------------------------------
# gen
# ---------------------------------------------------------------------------


def _cmd_gen(args: argparse.Namespace) -> int:
    out_dir = args.out or _default_out_dir()
    wanted = set(args.family or [])
    known = {benchmark.name for benchmark in trace_benchmarks()}
    unknown = sorted(wanted - known)
    if unknown:
        print(
            f"error: unknown trace famil{'ies' if len(unknown) > 1 else 'y'} "
            f"{', '.join(unknown)} (known: {', '.join(sorted(known))})",
            file=sys.stderr,
        )
        return 2
    out_dir.mkdir(parents=True, exist_ok=True)
    table = Table(title=f"Trace suite — {out_dir}", columns=["kernel", "family", "warps", "instructions", "hash", "file"])
    written = 0
    for benchmark in trace_benchmarks():
        if wanted and benchmark.name not in wanted:
            continue
        for spec in benchmark.kernels:
            programs = generate_kernel_programs(spec)
            path = out_dir / default_trace_filename(spec.name)
            content_hash = write_trace(
                path,
                programs,
                meta={
                    "kernel": spec.name,
                    "source": "family",
                    "family": spec.family,
                    "num_warps": len(programs),
                },
            )
            table.add_row(
                spec.name, spec.family, len(programs),
                sum(len(program) for program in programs), content_hash[:16], str(path),
            )
            written += 1
    print(table.to_text())
    print(f"\n{written} trace file(s) written to {out_dir}")
    return 0


# ---------------------------------------------------------------------------
# capture
# ---------------------------------------------------------------------------


def _cmd_capture(args: argparse.Namespace) -> int:
    from repro.experiments.common import preset_config

    out_dir = args.out or _default_out_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    # The scale preset bounds how many kernels per benchmark get captured
    # (fast: 1, full: 2 — the same limit the experiments evaluate).
    config = preset_config("fast" if args.fast else "full")
    specs: List[KernelSpec] = []
    for name in args.benchmarks:
        benchmark = get_benchmark(name)
        # An explicit --kernel overrides the scale limit (any kernel is
        # addressable by name); otherwise capture the limited set.
        candidates = benchmark.kernels if args.kernel else config.limited_kernels(benchmark)
        for spec in candidates:
            if args.kernel is None or spec.name == args.kernel:
                specs.append(spec)
    if not specs:
        print(f"error: no kernel named {args.kernel!r} in {args.benchmarks}", file=sys.stderr)
        return 2
    table = Table(
        title=f"Captured traces — {out_dir}",
        columns=["kernel", "cycles", "instructions", "hash", "verified", "file"],
    )
    for spec in specs:
        path = out_dir / default_trace_filename(spec.name)
        content_hash, live = capture_kernel_to_file(spec, path, max_cycles=args.max_cycles)
        verified = "-"
        if args.verify:
            from repro.gpu.config import baseline_config
            from repro.gpu.gpu import GPU

            replay_spec = trace_kernel_from_file(path)
            replayed = GPU(baseline_config(max_cycles=live.cycles + 1)).run_kernel(
                generate_kernel_programs(replay_spec), max_cycles=live.cycles + 1
            )
            if replayed.counters != live.counters:
                print(
                    f"error: {spec.name}: replay counters diverged from the live run",
                    file=sys.stderr,
                )
                return 1
            verified = "bit-identical"
        table.add_row(
            spec.name, live.cycles, live.counters.instructions,
            content_hash[:16], verified, str(path),
        )
    print(table.to_text())
    return 0


# ---------------------------------------------------------------------------
# replay
# ---------------------------------------------------------------------------


def _resolve_replay_kernels(targets: Sequence[str], limit) -> List[KernelSpec]:
    kernels: List[KernelSpec] = []
    registered = all_benchmarks()
    for target in targets:
        # Registered names win over bare files so a stray local file named
        # like a benchmark cannot shadow it; trace files are addressed by
        # their suffix or an explicit path.
        if target in registered:
            kernels.extend(limit(registered[target]))
        elif target.endswith(TRACE_SUFFIX) or Path(target).is_file():
            kernels.append(trace_kernel_from_file(Path(target)))
        else:
            raise KeyError(
                f"{target!r} is neither a registered benchmark nor a trace file "
                f"(known benchmarks: {sorted(registered)})"
            )
    return kernels


def _cmd_replay(args: argparse.Namespace) -> int:
    import os

    from repro.experiments.common import (
        preset_config,
        run_scheme_on_kernel,
        train_or_load_model,
    )

    if args.cache_dir:
        os.environ["REPRO_CACHE_DIR"] = args.cache_dir
    config = preset_config("fast" if args.fast else "full")
    schemes = [scheme.strip() for scheme in args.schemes.split(",") if scheme.strip()]
    known_schemes = _known_schemes()
    unknown = sorted(set(schemes) - known_schemes)
    if unknown:
        print(
            f"error: unknown scheme(s) {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known_schemes))})",
            file=sys.stderr,
        )
        return 2
    try:
        kernels = _resolve_replay_kernels(args.targets, config.limited_kernels)
    except (KeyError, TraceFormatError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    model = None
    if any(scheme.startswith("poise") for scheme in schemes):
        model = train_or_load_model(config)
    table = Table(
        title=f"Trace replay ({config.label} configuration)",
        columns=["kernel", "scheme", "cycles", "instructions", "ipc", "l1_hit", "warp_tuple", "source"],
    )
    for spec in kernels:
        source = (
            getattr(spec, "family", "") or "file"
            if isinstance(spec, TraceKernelSpec)
            else "synthetic"
        )
        for scheme in schemes:
            result = run_scheme_on_kernel(scheme, spec, config, model=model)
            table.add_row(
                spec.name, scheme, result.cycles, result.counters.instructions,
                result.ipc, result.l1_hit_rate, str(result.warp_tuple), source,
            )
    print(table.to_text())
    print(f"\n{len(kernels)} kernel(s) x {len(schemes)} scheme(s) replayed")
    return 0


# ---------------------------------------------------------------------------
# info
# ---------------------------------------------------------------------------


def _cmd_info(args: argparse.Namespace) -> int:
    status = 0
    for path in args.traces:
        try:
            stats = trace_stats(path)
        except TraceFormatError as error:
            print(f"{path}: INVALID — {error}", file=sys.stderr)
            status = 1
            continue
        meta = stats["meta"]
        print(f"{path}")
        print(f"  kernel:       {meta.get('kernel', '?')}")
        print(f"  source:       {meta.get('source', '?')}"
              + (f" ({meta['family']})" if meta.get("family") else ""))
        print(f"  warps:        {stats['num_warps']}")
        print(f"  instructions: {stats['instructions']:,} ({stats['loads']:,} loads)")
        print(f"  unique lines: {stats['unique_lines']:,}")
        print(f"  content hash: {stats['content_hash']}")
        if args.per_warp:
            for row in stats["per_warp"]:
                print(
                    f"    warp {row['warp_id']:>3}: {row['instructions']:>8,} instructions, "
                    f"{row['loads']:>7,} loads"
                )
    return status


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.trace_command == "gen":
        return _cmd_gen(args)
    if args.trace_command == "capture":
        try:
            return _cmd_capture(args)
        except (KeyError, RuntimeError) as error:
            print(f"error: {error.args[0] if error.args else error}", file=sys.stderr)
            return 2
    if args.trace_command == "replay":
        return _cmd_replay(args)
    if args.trace_command == "info":
        return _cmd_info(args)
    raise AssertionError(f"unhandled subcommand {args.trace_command!r}")


if __name__ == "__main__":
    sys.exit(main())
