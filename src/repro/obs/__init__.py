"""Observability: run telemetry + longitudinal analysis over the artifacts.

Two halves, consumed by ``repro analyze``:

* :mod:`repro.obs.telemetry` — structured run-telemetry counters (cache
  hit/miss/corrupt-fallback, per-phase wall-clock for profile/train/
  simulate) threaded through the existing execution seams and emitted
  into every bench entry and sweep telemetry sidecar.
* :mod:`repro.obs.schema` / :mod:`repro.obs.trajectory` /
  :mod:`repro.obs.regress` / :mod:`repro.obs.compare` — the analysis
  layer: a versioned ``BenchRecordSchema`` with a tolerant loader for
  every historical ``BENCH_throughput.json`` shape, per
  kernel×scheme×engine throughput trajectories, statistical regression
  detection with a CI-consumable ``verdict.json``, and cross-sweep
  comparison of two sweep label trees.

This ``__init__`` is deliberately lazy (PEP 562): :mod:`repro.obs.schema`
imports :mod:`repro.runtime.bench`, which itself imports
:mod:`repro.obs.telemetry` for the phase timers — an eager re-export here
would turn that into a circular import.
"""

from __future__ import annotations

_SUBMODULES = {
    "compare": "repro.obs.compare",
    "regress": "repro.obs.regress",
    "schema": "repro.obs.schema",
    "telemetry": "repro.obs.telemetry",
    "trajectory": "repro.obs.trajectory",
}

__all__ = sorted(_SUBMODULES)


def __getattr__(name: str):
    if name in _SUBMODULES:
        import importlib

        return importlib.import_module(_SUBMODULES[name])
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
