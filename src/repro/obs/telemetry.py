"""Run-telemetry counters: per-phase wall-clock + cache-behaviour rollups.

The telemetry layer makes the invisible parts of a run visible without
touching any content-stable artifact:

* :func:`phase` — a context manager accumulating *inclusive* wall-clock
  per named phase (``profile`` / ``train`` / ``simulate``), wrapped around
  the execution seams in :mod:`repro.experiments.common` and
  :mod:`repro.runtime.bench`.  Nested phases each accumulate their own
  inclusive time (a training pass that profiles kernels counts the
  profiling wall-clock under both ``train`` and ``profile``).
* :func:`telemetry_snapshot` / :func:`telemetry_delta` — combine the phase
  totals with the :class:`repro.runtime.cache.CacheStats` counters into
  one plain-dict payload, so callers bracket a region of work and emit
  exactly what happened inside it.

All counters are **per process**: parallel sweep workers accumulate their
own totals, which never reach the parent through this module.  The
executor closes that gap at its own layer — every pool job ships its
cache-counter delta home in a worker envelope, surfaced as
:attr:`~repro.runtime.executor.JobReport.worker_cache` and merged into
``run_telemetry.json`` — so a ``--jobs N`` sweep now reports both the
parent's share (``cache``) and the workers' (``cache_workers``).

The ``repro serve`` daemon additionally accumulates service counters here
(:func:`record_serve` / :func:`record_serve_gauge`): jobs submitted,
deduplicated, completed and requeued, worker restarts, dispatch latency
and peak queue depth.  They ride the same snapshot/delta machinery, so
health endpoints and drain summaries report exactly what happened inside
a bracketed window.

This module must not import anything above :mod:`repro.runtime` — the
bench layer imports it, so a heavier import here would be circular.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping, Optional

#: Accumulated per-phase totals of this process: name -> {seconds, calls}.
_PHASES: Dict[str, Dict[str, float]] = {}

#: Accumulated serve-daemon counters of this process (see record_serve).
_SERVE: Dict[str, float] = {}

#: Serve metrics that are high-water gauges, not monotone counters: a
#: delta reports their *current* value rather than a subtraction.
SERVE_GAUGES = frozenset({"queue_depth_peak"})

TELEMETRY_FORMAT_VERSION = 1


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Accumulate the inclusive wall-clock of the ``with`` body under ``name``."""
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        bucket = _PHASES.setdefault(name, {"seconds": 0.0, "calls": 0})
        bucket["seconds"] += elapsed
        bucket["calls"] += 1


def phase_totals() -> Dict[str, Dict[str, float]]:
    """A sorted copy of this process's accumulated phase totals."""
    return {name: dict(bucket) for name, bucket in sorted(_PHASES.items())}


def reset_phases() -> None:
    """Drop all accumulated phase totals (tests and fresh measurements)."""
    _PHASES.clear()


def phases_delta(
    before: Mapping[str, Mapping[str, float]],
    after: Optional[Mapping[str, Mapping[str, float]]] = None,
) -> Dict[str, Dict[str, float]]:
    """Phase totals accumulated between two :func:`phase_totals` snapshots.

    Phases that saw no calls in the window are omitted, so a delta over an
    idle region is ``{}``.
    """
    after = phase_totals() if after is None else after
    delta: Dict[str, Dict[str, float]] = {}
    for name, bucket in after.items():
        base = before.get(name, {})
        seconds = float(bucket.get("seconds", 0.0)) - float(base.get("seconds", 0.0))
        calls = int(bucket.get("calls", 0)) - int(base.get("calls", 0))
        if calls > 0 or seconds > 0.0:
            delta[name] = {"seconds": seconds, "calls": calls}
    return delta


def record_serve(name: str, value: float = 1.0) -> None:
    """Add ``value`` to the process-wide serve counter ``name``."""
    _SERVE[name] = _SERVE.get(name, 0.0) + value


def record_serve_gauge(name: str, value: float) -> None:
    """Raise the high-water gauge ``name`` to ``value`` if it is higher."""
    if value > _SERVE.get(name, 0.0):
        _SERVE[name] = value


def serve_totals() -> Dict[str, float]:
    """A sorted copy of this process's accumulated serve metrics."""
    return {name: _SERVE[name] for name in sorted(_SERVE)}


def reset_serve() -> None:
    """Drop all accumulated serve metrics (tests and fresh measurements)."""
    _SERVE.clear()


def telemetry_snapshot() -> Dict[str, Dict]:
    """The current phase totals + cache + serve counters of this process."""
    from repro.runtime.cache import cache_stats

    return {
        "phases": phase_totals(),
        "cache": cache_stats().to_dict(),
        "serve": serve_totals(),
    }


def telemetry_delta(before: Mapping[str, Mapping]) -> Dict[str, Dict]:
    """What accumulated since ``before`` (a :func:`telemetry_snapshot`)."""
    after = telemetry_snapshot()
    cache_before = before.get("cache", {})
    serve_before = before.get("serve", {})
    serve: Dict[str, float] = {}
    for name, value in after["serve"].items():
        if name in SERVE_GAUGES:
            serve[name] = float(value)  # high-water mark: report the level
        else:
            delta = float(value) - float(serve_before.get(name, 0.0))
            if delta:
                serve[name] = delta
    return {
        "phases": phases_delta(before.get("phases", {}), after["phases"]),
        "cache": {
            key: int(value) - int(cache_before.get(key, 0))
            for key, value in after["cache"].items()
        },
        "serve": serve,
    }


def describe_cache(cache: Mapping[str, int]) -> str:
    """One human line for a cache-counter dict, e.g.
    ``5 hits, 3 misses (1 corrupt fallback), 3 stores``."""

    def plural(count: int, singular: str, plural_form: Optional[str] = None) -> str:
        word = singular if count == 1 else (plural_form or singular + "s")
        return f"{count} {word}"

    hits = int(cache.get("hits", 0))
    misses = int(cache.get("misses", 0))
    corrupt = int(cache.get("corrupt", 0))
    stores = int(cache.get("stores", 0))
    store_failures = int(cache.get("store_failures", 0))
    text = f"{plural(hits, 'hit')}, {plural(misses, 'miss', 'misses')}"
    if corrupt:
        text += f" ({plural(corrupt, 'corrupt fallback')})"
    text += f", {plural(stores, 'store')}"
    if store_failures:
        text += f" ({plural(store_failures, 'failed store')})"
    return text


def describe_phases(phases: Mapping[str, Mapping[str, float]]) -> str:
    """One human line for a phase-totals dict, e.g.
    ``profile 1.24s/3, simulate 0.41s/12`` (seconds / call count)."""
    parts = [
        f"{name} {float(bucket.get('seconds', 0.0)):.2f}s/{int(bucket.get('calls', 0))}"
        for name, bucket in sorted(phases.items())
    ]
    return ", ".join(parts) if parts else "none"
