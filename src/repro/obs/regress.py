"""Statistical regression detection over bracket trajectories.

Per bracket (kernel × scheme × engine): the **baseline** is the median of
all prior normalized values (host-speed normalized by each entry's own
live-legacy anchor — see :mod:`repro.obs.trajectory`), the **latest** is
the most recent normalized value, and the bracket *regresses* when
``latest / baseline < 1 / threshold``.  The median baseline makes one
historical outlier harmless; the ratio direction means only slowdowns
fail (speedups just move the future baseline up).

Fewer than ``min_history`` normalized points is ``insufficient-data`` —
deliberately *not* a pass: a single-entry history proves nothing either
way, and the verdict must say so rather than green-light it.

The verdict document is machine-readable and CI-consumable::

    {
      "format_version": 1, "kind": "analyze-verdict",
      "source": "...", "threshold": 1.6,
      "status": "pass" | "regress" | "insufficient-data",
      "counts": {"pass": N, "regress": N, "insufficient_data": N},
      "brackets": [{"bracket": "kernel:scheme:engine", "status": ..., ...}]
    }

The overall status is ``regress`` if any bracket regressed, otherwise
``insufficient-data`` only when *every* bracket is (a young history),
otherwise ``pass``.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median
from typing import Dict, List, Mapping, Optional

from repro.obs.schema import BenchSchemaError
from repro.obs.trajectory import Trajectory

VERDICT_FORMAT_VERSION = 1

#: Default slowdown ratio that fails a bracket: the latest normalized value
#: dropping below 1/1.6 ≈ 0.63x of the baseline median.  Wide enough that
#: matrix-cell timer noise on small cycle budgets stays clear of it, tight
#: enough that a genuine 2x slowdown (0.5x) always trips.
DEFAULT_THRESHOLD = 1.6

#: Minimum normalized points a bracket needs before it can pass or regress.
DEFAULT_MIN_HISTORY = 2

STATUS_PASS = "pass"
STATUS_REGRESS = "regress"
STATUS_INSUFFICIENT = "insufficient-data"


@dataclass(frozen=True)
class BracketVerdict:
    """The regression judgement of one bracket's trajectory."""

    bracket: str
    kernel: str
    scheme: str
    engine: str
    status: str
    points: int  # normalized points considered
    latest: Optional[float]
    baseline: Optional[float]
    ratio: Optional[float]
    reason: str

    def to_dict(self) -> dict:
        return {
            "bracket": self.bracket,
            "kernel": self.kernel,
            "scheme": self.scheme,
            "engine": self.engine,
            "status": self.status,
            "points": self.points,
            "latest": self.latest,
            "baseline": self.baseline,
            "ratio": self.ratio,
            "reason": self.reason,
        }


def judge_trajectory(
    trajectory: Trajectory,
    threshold: float = DEFAULT_THRESHOLD,
    min_history: int = DEFAULT_MIN_HISTORY,
) -> BracketVerdict:
    """Judge one bracket against its own normalized history."""
    if threshold <= 1.0:
        raise ValueError(f"threshold must be > 1.0, got {threshold}")
    values = trajectory.normalized_values
    common = {
        "bracket": trajectory.bracket,
        "kernel": trajectory.kernel,
        "scheme": trajectory.scheme,
        "engine": trajectory.engine,
        "points": len(values),
    }
    if len(values) < max(2, min_history):
        return BracketVerdict(
            status=STATUS_INSUFFICIENT,
            latest=values[-1] if values else None,
            baseline=None,
            ratio=None,
            reason=(
                f"{len(values)} normalized point(s); "
                f"need >= {max(2, min_history)} to judge"
            ),
            **common,
        )
    baseline = median(values[:-1])
    latest = values[-1]
    cutoff = 1.0 / threshold
    ratio = latest / baseline if baseline > 0 else float("inf")
    status = STATUS_REGRESS if ratio < cutoff else STATUS_PASS
    return BracketVerdict(
        status=status,
        latest=latest,
        baseline=baseline,
        ratio=ratio,
        reason=(
            f"latest {latest:.3f} vs baseline median {baseline:.3f} "
            f"-> {ratio:.3f}x (fails below {cutoff:.3f}x)"
        ),
        **common,
    )


def detect_regressions(
    trajectories: Mapping[str, Trajectory],
    threshold: float = DEFAULT_THRESHOLD,
    min_history: int = DEFAULT_MIN_HISTORY,
) -> List[BracketVerdict]:
    """Judge every bracket; order follows the trajectory mapping."""
    return [
        judge_trajectory(trajectory, threshold=threshold, min_history=min_history)
        for trajectory in trajectories.values()
    ]


def build_verdict(
    verdicts: List[BracketVerdict],
    threshold: float = DEFAULT_THRESHOLD,
    source: Optional[str] = None,
) -> dict:
    """Assemble the CI-consumable verdict document."""
    counts: Dict[str, int] = {"pass": 0, "regress": 0, "insufficient_data": 0}
    for verdict in verdicts:
        counts[verdict.status.replace("-", "_")] += 1
    if counts["regress"]:
        status = STATUS_REGRESS
    elif verdicts and counts["pass"] == 0:
        status = STATUS_INSUFFICIENT
    elif verdicts:
        status = STATUS_PASS
    else:
        status = STATUS_INSUFFICIENT
    return {
        "format_version": VERDICT_FORMAT_VERSION,
        "kind": "analyze-verdict",
        "source": source,
        "threshold": threshold,
        "status": status,
        "counts": counts,
        "brackets": [verdict.to_dict() for verdict in verdicts],
    }


def validate_verdict(payload: object) -> None:
    """Schema-check a verdict document (CI validates before consuming).

    Raises :class:`~repro.obs.schema.BenchSchemaError` on the first
    violation.
    """

    def require(condition: bool, message: str) -> None:
        if not condition:
            raise BenchSchemaError(f"verdict: {message}")

    require(isinstance(payload, dict), "must be an object")
    require(
        payload.get("format_version") == VERDICT_FORMAT_VERSION,
        f"format_version must be {VERDICT_FORMAT_VERSION}",
    )
    require(payload.get("kind") == "analyze-verdict", "kind must be 'analyze-verdict'")
    require(
        isinstance(payload.get("threshold"), (int, float))
        and payload["threshold"] > 1.0,
        "threshold must be a number > 1.0",
    )
    statuses = (STATUS_PASS, STATUS_REGRESS, STATUS_INSUFFICIENT)
    require(payload.get("status") in statuses, f"status must be one of {statuses}")
    counts = payload.get("counts")
    require(isinstance(counts, dict), "counts must be an object")
    for key in ("pass", "regress", "insufficient_data"):
        require(
            isinstance(counts.get(key), int) and counts[key] >= 0,
            f"counts[{key!r}] must be a non-negative integer",
        )
    brackets = payload.get("brackets")
    require(isinstance(brackets, list), "brackets must be a list")
    require(
        sum(counts[key] for key in ("pass", "regress", "insufficient_data"))
        == len(brackets),
        "counts must sum to the number of brackets",
    )
    for position, bracket in enumerate(brackets):
        where = f"brackets[{position}]"
        require(isinstance(bracket, dict), f"{where} must be an object")
        for key in ("bracket", "kernel", "scheme", "engine", "reason"):
            require(
                isinstance(bracket.get(key), str) and bracket[key],
                f"{where} needs a non-empty string {key!r}",
            )
        require(bracket.get("status") in statuses, f"{where} has an unknown status")
        require(
            isinstance(bracket.get("points"), int) and bracket["points"] >= 0,
            f"{where} needs a non-negative integer 'points'",
        )
