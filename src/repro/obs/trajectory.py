"""Per kernel × scheme × engine throughput trajectories across bench entries.

Raw cycles/second values from different hosts are not comparable — a
throttled CI runner is slower everywhere.  Every entry therefore gets a
**host-speed anchor**: the geometric mean of its own live legacy hot-loop
throughput over the two gate bracket kernels (the same live-legacy
reference the ``repro bench --gate`` CI gate compares against).  A
bracket's *normalized* trajectory value is ``cycles_per_second / anchor``
— both numerator and denominator pay the same host slowdown, so the
normalized series is flat across hosts unless the bracket itself changed.

Entries without a complete anchor (e.g. a run that only benchmarked the
fast engine) keep their raw points but contribute no normalized value,
and regression detection skips them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.schema import (
    HOT_LOOP_SCHEME,
    BenchEntry,
    BenchHistory,
)
from repro.runtime.bench import GATE_KERNELS

TRAJECTORY_FORMAT_VERSION = 1


@dataclass(frozen=True)
class TrajectoryPoint:
    """One bracket's measurement in one trajectory entry."""

    entry_index: int
    timestamp: str
    generation: str
    cycles_per_second: float
    normalized: Optional[float]  # None when the entry has no legacy anchor


@dataclass
class Trajectory:
    """The ordered measurement series of one kernel × scheme × engine."""

    kernel: str
    scheme: str
    engine: str
    points: List[TrajectoryPoint] = field(default_factory=list)

    @property
    def bracket(self) -> str:
        return f"{self.kernel}:{self.scheme}:{self.engine}"

    @property
    def normalized_values(self) -> List[float]:
        return [
            point.normalized for point in self.points if point.normalized is not None
        ]


def legacy_anchor(
    entry: BenchEntry, kernels: Sequence[str] = GATE_KERNELS
) -> Optional[float]:
    """The entry's host-speed anchor, or ``None`` when incomplete.

    Geometric mean of the live legacy hot-loop cycles/second over all
    ``kernels`` — all must be present for the anchor to be stable across
    entries.
    """
    values: List[float] = []
    for kernel in kernels:
        matches = [
            sample.cycles_per_second
            for sample in entry.samples
            if sample.kernel == kernel
            and sample.scheme == HOT_LOOP_SCHEME
            and sample.engine == "legacy"
        ]
        if not matches or matches[0] <= 0:
            return None
        values.append(matches[0])
    return math.exp(sum(math.log(value) for value in values) / len(values))


def build_trajectories(history: BenchHistory) -> Dict[str, Trajectory]:
    """Every bracket's ordered series, keyed by ``kernel:scheme:engine``.

    Insertion order follows first appearance in the history, so older
    brackets list first and the dict is deterministic for a given file.
    """
    trajectories: Dict[str, Trajectory] = {}
    for entry in history.entries:
        anchor = legacy_anchor(entry)
        for sample in entry.samples:
            trajectory = trajectories.setdefault(
                sample.bracket,
                Trajectory(kernel=sample.kernel, scheme=sample.scheme,
                           engine=sample.engine),
            )
            trajectory.points.append(TrajectoryPoint(
                entry_index=entry.index,
                timestamp=entry.timestamp,
                generation=entry.generation,
                cycles_per_second=sample.cycles_per_second,
                normalized=(
                    sample.cycles_per_second / anchor if anchor is not None else None
                ),
            ))
    return trajectories


def trajectory_report(history: BenchHistory) -> dict:
    """The machine-readable trajectory document ``repro analyze ci`` emits."""
    trajectories = build_trajectories(history)
    return {
        "format_version": TRAJECTORY_FORMAT_VERSION,
        "kind": "bench-trajectory",
        "source": str(history.path) if history.path is not None else None,
        "entries": [
            {
                "index": entry.index,
                "timestamp": entry.timestamp,
                "generation": entry.generation,
                "samples": len(entry.samples),
                "legacy_anchor": legacy_anchor(entry),
            }
            for entry in history.entries
        ],
        "warnings": history.warnings,
        "brackets": {
            bracket: {
                "kernel": trajectory.kernel,
                "scheme": trajectory.scheme,
                "engine": trajectory.engine,
                "points": [
                    {
                        "entry_index": point.entry_index,
                        "timestamp": point.timestamp,
                        "generation": point.generation,
                        "cycles_per_second": point.cycles_per_second,
                        "normalized": point.normalized,
                    }
                    for point in trajectory.points
                ],
            }
            for bracket, trajectory in trajectories.items()
        },
    }
