"""Cross-sweep comparison of two sweep label trees, point by point.

Sweep point artifacts are content-stable (no timestamps, no host fields),
so two trees of the same grid are directly comparable: match points by
``point_id``, diff one metric, list everything that drifted beyond a
relative tolerance.  The typical uses are label-vs-label (``fast`` vs
``full``), tree-vs-tree (yesterday's cache dir vs today's) and
before/after an engine or scheduler change.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.scenarios.grid import ScenarioError
from repro.scenarios.runner import points_dir

COMPARISON_FORMAT_VERSION = 1

DEFAULT_METRIC = "speedup"
DEFAULT_TOLERANCE = 0.05


class SweepCompareError(ScenarioError):
    """A comparison side is missing, empty or unreadable."""


def load_sweep_points(
    cache_dir: Union[str, Path], grid_name: str, label: str
) -> Dict[str, dict]:
    """Every point artifact of one sweep tree, keyed by ``point_id``.

    Raises :class:`SweepCompareError` on a missing/empty tree or a corrupt
    artifact — a comparison must never silently paper over bad inputs
    (same discipline as sweep aggregation).
    """
    directory = points_dir(cache_dir, grid_name, label)
    if not directory.is_dir():
        raise SweepCompareError(
            f"no sweep artifacts under {directory} — "
            f"run `repro sweep run {grid_name}` for that label first"
        )
    points: Dict[str, dict] = {}
    for path in sorted(directory.glob("*.json")):
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError) as error:
            raise SweepCompareError(
                f"point artifact {path} is unreadable ({error})"
            ) from None
        point_id = document.get("point_id") if isinstance(document, dict) else None
        metrics = document.get("metrics") if isinstance(document, dict) else None
        if not isinstance(point_id, str) or not isinstance(metrics, dict):
            raise SweepCompareError(
                f"point artifact {path} is not a well-formed sweep point"
            )
        points[point_id] = document
    if not points:
        raise SweepCompareError(f"no point artifacts under {directory}")
    return points


def compare_sweeps(
    points_a: Dict[str, dict],
    points_b: Dict[str, dict],
    metric: str = DEFAULT_METRIC,
    tolerance: float = DEFAULT_TOLERANCE,
    label_a: str = "a",
    label_b: str = "b",
) -> dict:
    """Diff ``metric`` across two point sets; flag relative drift > tolerance."""
    ids_a, ids_b = set(points_a), set(points_b)
    rows: List[dict] = []
    skipped: List[str] = []
    for point_id in sorted(ids_a & ids_b):
        value_a = points_a[point_id].get("metrics", {}).get(metric)
        value_b = points_b[point_id].get("metrics", {}).get(metric)
        if not isinstance(value_a, (int, float)) or not isinstance(value_b, (int, float)):
            skipped.append(point_id)
            continue
        delta = float(value_b) - float(value_a)
        if value_a:
            relative = delta / abs(float(value_a))
        else:
            relative = 0.0 if delta == 0.0 else float("inf")
        rows.append({
            "point_id": point_id,
            label_a: float(value_a),
            label_b: float(value_b),
            "delta": delta,
            "relative": relative,
            "drifted": abs(relative) > tolerance,
        })
    return {
        "format_version": COMPARISON_FORMAT_VERSION,
        "kind": "sweep-comparison",
        "metric": metric,
        "tolerance": tolerance,
        "labels": [label_a, label_b],
        "common": len(rows) + len(skipped),
        "only_a": sorted(ids_a - ids_b),
        "only_b": sorted(ids_b - ids_a),
        "skipped": skipped,  # common points lacking the metric on a side
        "points": rows,
        "drifted": [row["point_id"] for row in rows if row["drifted"]],
    }
