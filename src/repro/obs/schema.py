"""Versioned ``BENCH_throughput.json`` record schema + tolerant loader.

The trajectory file is append-only and has lived through three shape
generations:

* ``v0-flat`` — the seed's original entries: flat ``throughput[kernel]``
  rows, no ``environment`` block, no per-row ``engine`` field.  They were
  measured before the engine seam existed, i.e. on the **legacy** core by
  definition.
* ``v1-engine`` — ``environment`` block, throughput nested per engine
  (``throughput[engine][kernel]``), a flat ``trace_replay`` row, the
  scheme × kernel × engine ``matrix`` and the ``sweep`` timing dict.
* ``v2-telemetry`` — everything above plus a ``bench_schema`` version tag
  and a ``telemetry`` block (cache counters, phase wall-clock, per-stage
  timings).  This is the only shape ``repro bench`` appends today, and
  :func:`validate_bench_entry` enforces it **before** the append so the
  drift stops here.

:func:`load_bench_history` never raises on historical shapes — it
classifies each entry, extracts the per-bracket throughput samples it can
trust, and records a warning for anything it cannot, so one malformed
entry degrades to a gap in the trajectory instead of an analysis crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.runtime.bench import load_trajectory

#: The schema generation ``repro bench`` writes (and validates) today.
BENCH_SCHEMA_VERSION = 2

#: Entry-shape generations, oldest first.
GEN_V0 = "v0-flat"
GEN_V1 = "v1-engine"
GEN_V2 = "v2-telemetry"
GEN_UNKNOWN = "unknown"
GENERATIONS = (GEN_V0, GEN_V1, GEN_V2)

#: Synthetic scheme names for the non-matrix throughput sections, so every
#: sample lives in one kernel × scheme × engine bracket space.
HOT_LOOP_SCHEME = "hot_loop"
TRACE_REPLAY_SCHEME = "trace_replay"

#: Numeric fields every throughput/matrix row must carry.
ROW_NUMERIC_FIELDS = (
    "cycles",
    "instructions",
    "wall_seconds",
    "cycles_per_second",
    "instructions_per_second",
)


class BenchSchemaError(ValueError):
    """A bench entry violates the schema it claims (or must claim)."""


@dataclass(frozen=True)
class BenchSample:
    """One comparable throughput measurement in bracket space."""

    kernel: str
    scheme: str
    engine: str
    source: str  # "throughput" | "trace_replay" | "matrix"
    cycles_per_second: float
    entry_index: int
    timestamp: str
    generation: str

    @property
    def bracket(self) -> str:
        return f"{self.kernel}:{self.scheme}:{self.engine}"


@dataclass
class BenchEntry:
    """One classified trajectory entry plus everything extracted from it."""

    index: int
    generation: str
    timestamp: str
    raw: dict
    samples: List[BenchSample] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)


@dataclass
class BenchHistory:
    """A loaded trajectory file: classified entries, never an exception."""

    path: Optional[Path]
    entries: List[BenchEntry] = field(default_factory=list)

    @property
    def warnings(self) -> List[str]:
        return [warning for entry in self.entries for warning in entry.warnings]

    @property
    def samples(self) -> List[BenchSample]:
        return [sample for entry in self.entries for sample in entry.samples]


def classify_entry(entry: object) -> str:
    """Which shape generation an entry belongs to (never raises)."""
    if not isinstance(entry, dict) or not isinstance(entry.get("throughput"), dict):
        return GEN_UNKNOWN
    if "bench_schema" in entry or "telemetry" in entry:
        return GEN_V2
    if isinstance(entry.get("environment"), dict):
        return GEN_V1
    return GEN_V0


def _row_cps(row: dict) -> Optional[float]:
    value = row.get("cycles_per_second")
    if isinstance(value, (int, float)) and value > 0:
        return float(value)
    return None


def _entry_samples(
    entry: dict, index: int, generation: str, warnings: List[str]
) -> List[BenchSample]:
    """Extract every trustworthy sample of one entry into bracket space."""
    timestamp = str(entry.get("timestamp", ""))
    label = f"entry #{index + 1}"

    def sample(kernel: str, scheme: str, engine: str, source: str, cps: float):
        return BenchSample(
            kernel=kernel, scheme=scheme, engine=engine, source=source,
            cycles_per_second=cps, entry_index=index, timestamp=timestamp,
            generation=generation,
        )

    samples: List[BenchSample] = []
    for key, value in entry.get("throughput", {}).items():
        if not isinstance(value, dict):
            warnings.append(f"{label}: throughput[{key!r}] is not an object; skipped")
            continue
        if "cycles_per_second" in value:
            # A flat row: either the v0 shape (key = kernel, engine implied
            # legacy — never attributed to any ambient engine) or the
            # trace_replay row (carries its own kernel/engine fields).
            cps = _row_cps(value)
            if cps is None:
                warnings.append(f"{label}: throughput[{key!r}] has no usable "
                                f"cycles_per_second; skipped")
                continue
            if key == "trace_replay":
                samples.append(sample(
                    str(value.get("kernel", "trace_replay")), TRACE_REPLAY_SCHEME,
                    str(value.get("engine", "legacy")), "trace_replay", cps,
                ))
            else:
                samples.append(sample(
                    str(value.get("kernel", key)), HOT_LOOP_SCHEME,
                    str(value.get("engine", "legacy")), "throughput", cps,
                ))
            continue
        # Per-engine nesting: key = engine, value = {kernel: row}.
        for kernel, row in value.items():
            cps = _row_cps(row) if isinstance(row, dict) else None
            if cps is None:
                warnings.append(f"{label}: throughput[{key!r}][{kernel!r}] has no "
                                f"usable cycles_per_second; skipped")
                continue
            samples.append(sample(
                str(kernel), HOT_LOOP_SCHEME, str(row.get("engine", key)),
                "throughput", cps,
            ))
    matrix = entry.get("matrix", [])
    if not isinstance(matrix, list):
        warnings.append(f"{label}: matrix is not a list; skipped")
        matrix = []
    for position, row in enumerate(matrix):
        cps = _row_cps(row) if isinstance(row, dict) else None
        if cps is None or "kernel" not in row or "scheme" not in row:
            warnings.append(f"{label}: matrix row #{position} is malformed; skipped")
            continue
        samples.append(sample(
            str(row["kernel"]), str(row["scheme"]),
            str(row.get("engine", "legacy")), "matrix", cps,
        ))
    return samples


def load_bench_history(path: Union[str, Path]) -> BenchHistory:
    """Load and classify a trajectory file; tolerant of every generation.

    Unrecognizable entries contribute zero samples and one warning each —
    they are never silently mixed into trajectories and never fatal.
    """
    path = Path(path)
    history = BenchHistory(path=path)
    for index, item in enumerate(load_trajectory(path)):
        generation = classify_entry(item)
        raw = item if isinstance(item, dict) else {}
        entry = BenchEntry(
            index=index,
            generation=generation,
            timestamp=str(raw.get("timestamp", "")),
            raw=raw,
        )
        if generation == GEN_UNKNOWN:
            entry.warnings.append(
                f"entry #{index + 1} has no recognizable throughput section; "
                f"classified as {GEN_UNKNOWN} and excluded from trajectories"
            )
        else:
            entry.samples = _entry_samples(raw, index, generation, entry.warnings)
        history.entries.append(entry)
    return history


# ---------------------------------------------------------------------------
# Validation of freshly built entries (the append-time schema gate)
# ---------------------------------------------------------------------------


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise BenchSchemaError(message)


def _validate_row(row: object, where: str, extra: tuple = ()) -> None:
    _require(isinstance(row, dict), f"{where} must be an object")
    for field_name in ("kernel",) + extra:
        _require(
            isinstance(row.get(field_name), str) and row[field_name],
            f"{where} needs a non-empty string {field_name!r}",
        )
    for field_name in ROW_NUMERIC_FIELDS:
        _require(
            isinstance(row.get(field_name), (int, float)),
            f"{where} needs a numeric {field_name!r}",
        )


def validate_bench_entry(entry: object) -> None:
    """Enforce the v2 schema on an entry about to be appended.

    Raises :class:`BenchSchemaError` naming the first violation.  Only new
    entries pass through here — historical shapes go through the tolerant
    :func:`load_bench_history` instead.
    """
    _require(isinstance(entry, dict), "bench entry must be an object")
    _require(
        entry.get("bench_schema") == BENCH_SCHEMA_VERSION,
        f"bench entry must carry bench_schema == {BENCH_SCHEMA_VERSION}",
    )
    for field_name in ("timestamp", "version"):
        _require(
            isinstance(entry.get(field_name), str) and entry[field_name],
            f"bench entry needs a non-empty string {field_name!r}",
        )
    environment = entry.get("environment")
    _require(isinstance(environment, dict), "bench entry needs an environment object")
    _require(
        isinstance(environment.get("python_version"), str),
        "environment needs a string 'python_version'",
    )
    _require(
        isinstance(environment.get("cpu_count"), int),
        "environment needs an integer 'cpu_count'",
    )
    telemetry = entry.get("telemetry")
    _require(isinstance(telemetry, dict), "bench entry needs a telemetry object")
    for section in ("cache", "phases", "stages"):
        _require(
            isinstance(telemetry.get(section), dict),
            f"telemetry needs a {section!r} object",
        )
    throughput = entry.get("throughput")
    _require(
        isinstance(throughput, dict) and throughput,
        "bench entry needs a non-empty throughput object",
    )
    for key, value in throughput.items():
        if key == "trace_replay":
            _validate_row(value, "throughput['trace_replay']", extra=("engine",))
            continue
        _require(
            isinstance(value, dict) and value,
            f"throughput[{key!r}] must be a non-empty per-kernel object",
        )
        _require(
            "cycles_per_second" not in value,
            f"throughput[{key!r}] must nest rows per engine "
            f"(flat rows are the retired v0 shape)",
        )
        for kernel, row in value.items():
            _validate_row(row, f"throughput[{key!r}][{kernel!r}]", extra=("engine",))
    matrix = entry.get("matrix")
    _require(isinstance(matrix, list), "bench entry needs a matrix list (may be empty)")
    for position, row in enumerate(matrix):
        _validate_row(
            row, f"matrix row #{position}", extra=("scheme", "engine", "kind")
        )
    _require(isinstance(entry.get("sweep"), dict), "bench entry needs a sweep object")
