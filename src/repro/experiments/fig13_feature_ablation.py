"""Fig. 13 — sensitivity to removing one feature from the feature vector.

For each removed feature the regression is retrained on the reduced vector
and deployed with *no local search*, so the change in raw prediction quality
is visible.  The paper reports slowdowns (relative to training with all
features) between 1.5% (removing x7) and 21.7% (removing x6), with highly
memory-sensitive benchmarks hurt the most; the expected shape here is that
every ablated model is at best as good as the full model on the harmonic
mean.  x1/x2 are omitted from the sweep, as in the paper, because their
information is largely carried by x7.  The sweep is the ``fig13-ablation``
:class:`~repro.scenarios.grid.ScenarioGrid`: a ``feature_mask`` axis whose
``None`` value is the all-features reference column.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.tables import ExperimentResult, Table
from repro.experiments.common import (
    ArtifactSchema,
    ExperimentBase,
    ExperimentConfig,
    evaluation_benchmark_names,
)
from repro.profiling.metrics import harmonic_mean
from repro.scenarios.library import FIG13_ABLATIONS, fig13_grid
from repro.scenarios.runner import evaluate_grid

#: Feature indices (0-based into Table II's x1..x8) removed one at a time.
DEFAULT_ABLATIONS = FIG13_ABLATIONS  # x7, x6, x5, x4, x3


class Fig13FeatureAblation(ExperimentBase):
    experiment_id = "fig13"
    artifact = "Figure 13"
    title = "Sensitivity to removing a feature from X (retrained, no local search)"
    schema = ArtifactSchema(
        min_tables=1,
        required_scalars=tuple(f"hmean_minus_x{index + 1}" for index in DEFAULT_ABLATIONS),
        required_tables=("all-features",),
    )

    def build(
        self,
        config: ExperimentConfig,
        ablations: Optional[List[int]] = None,
        benchmarks: Optional[List[str]] = None,
    ) -> ExperimentResult:
        ablations = list(ablations if ablations is not None else DEFAULT_ABLATIONS)
        benchmarks = list(benchmarks or evaluation_benchmark_names())
        grid = fig13_grid(ablations=ablations, benchmarks=benchmarks)
        speedup = {
            (point.benchmark, point.feature_mask): metrics["speedup"]
            for point, metrics in evaluate_grid(grid, config).items()
        }

        experiment = ExperimentResult(
            experiment_id="fig13",
            description="Sensitivity to removing a feature from X (retrained, no local search)",
        )
        columns = ["benchmark", "all"] + [f"-x{index + 1}" for index in ablations]
        table = experiment.add_table(
            Table(title="Fig. 13 — IPC normalised to the all-features model", columns=columns)
        )

        # Reference: all features, no local search (so the comparison isolates
        # prediction accuracy exactly as the paper does).
        per_column: dict = {"all": []}
        for index in ablations:
            per_column[index] = []
        for name in benchmarks:
            reference = speedup[(name, None)]
            row = [name, 1.0]
            per_column["all"].append(1.0)
            for index in ablations:
                normalised = speedup[(name, (index,))] / reference if reference else 0.0
                row.append(normalised)
                per_column[index].append(max(normalised, 1e-6))
            table.add_row(*row)
        hmean_row = ["H-Mean", 1.0] + [harmonic_mean(per_column[index]) for index in ablations]
        table.add_row(*hmean_row)
        for index, value in zip(ablations, hmean_row[2:]):
            experiment.scalars[f"hmean_minus_x{index + 1}"] = value
        experiment.add_note(
            "Paper: harmonic-mean slowdown from 1.5% (-x7) to 21.7% (-x6); all-features "
            "training is best."
        )
        return experiment


def run(
    config: Optional[ExperimentConfig] = None,
    ablations: Optional[List[int]] = None,
) -> ExperimentResult:
    return Fig13FeatureAblation().run(config, ablations=ablations)


def main() -> None:
    Fig13FeatureAblation.cli()


if __name__ == "__main__":
    main()
