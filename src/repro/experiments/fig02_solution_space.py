"""Fig. 2 — the {N, p} solution space of an ``ii`` kernel.

The figure that motivates the whole paper: a static profile of one kernel
over the warp-tuple plane, the point CCWS/SWL converges to (restricted to
the diagonal), the point PCAL's search converges to, and the global optimum.
The reproduction regenerates:

* the full speedup grid (Fig. 2a),
* the two one-dimensional cuts ``p = N`` and ``p = 1`` (Fig. 2b), and
* the CCWS / PCAL / MAX summary points with their speedups.

The expected shape: CCWS's diagonal point is a small win, PCAL improves on
it by decoupling p, and the global optimum sits at a larger N with a small p
that neither prior scheme reaches.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import ExperimentResult, Table
from repro.experiments.common import (
    ArtifactSchema,
    ExperimentBase,
    ExperimentConfig,
    get_profile,
)
from repro.gpu.gpu import GPU
from repro.schedulers.pcal import PCALController
from repro.workloads.generator import generate_kernel_programs
from repro.workloads.registry import get_benchmark

DEFAULT_KERNEL_INDEX = 0


class Fig02SolutionSpace(ExperimentBase):
    experiment_id = "fig02"
    artifact = "Figure 2"
    title = "{N, p} solution space of one kernel (grid, cuts, summary points)"
    schema = ArtifactSchema(
        min_tables=3,
        required_scalars=("ccws_speedup", "max_speedup"),
        required_tables=("speedup grid", "summary points"),
    )

    def build(self, config: ExperimentConfig, benchmark: str = "ii") -> ExperimentResult:
        spec = get_benchmark(benchmark).kernels[DEFAULT_KERNEL_INDEX]
        profile = get_profile(spec, config)
        grid = profile.speedup_grid()

        experiment = ExperimentResult(
            experiment_id="fig02",
            description=f"{{N, p}} solution space of {spec.name}",
        )

        grid_table = experiment.add_table(
            Table(title="Fig. 2a — speedup grid", columns=["N", "p", "speedup"])
        )
        for (n, p), speedup in sorted(grid.items()):
            grid_table.add_row(n, p, speedup)

        cuts = experiment.add_table(
            Table(
                title="Fig. 2b — cuts p=N and p=1",
                columns=["N", "speedup_p_eq_N", "speedup_p_eq_1"],
            )
        )
        for n in sorted({point[0] for point in grid}):
            diag = grid.get((n, n), float("nan"))
            p1 = grid.get((n, 1), float("nan"))
            cuts.add_row(n, diag, p1)

        # Summary points: CCWS (best diagonal), PCAL (dynamic search), MAX (global optimum).
        ccws_point = profile.best_diagonal_point()
        max_point = profile.best_point()
        pcal = PCALController(profile=profile)
        sm = GPU(config.gpu).build_sm(generate_kernel_programs(spec))
        pcal_telemetry = pcal.execute(sm, config.run_max_cycles)
        pcal_point = pcal_telemetry["warp_tuple"]

        summary = experiment.add_table(
            Table(title="Fig. 2 — summary points", columns=["scheme", "N", "p", "speedup"])
        )
        summary.add_row("CCWS/SWL", ccws_point[0], ccws_point[1], grid.get(ccws_point, 1.0))
        summary.add_row(
            "PCAL", pcal_point[0], pcal_point[1], grid.get(tuple(pcal_point), float("nan"))
        )
        summary.add_row("MAX", max_point[0], max_point[1], grid.get(max_point, 1.0))

        experiment.scalars["ccws_speedup"] = grid.get(ccws_point, 1.0)
        experiment.scalars["max_speedup"] = grid.get(max_point, 1.0)
        experiment.add_note(
            "Paper (ii kernel #112): CCWS reaches (2,2) at 1.07x, PCAL (2,1) at 1.35x, "
            "global optimum (15,1) at 1.45x."
        )
        return experiment


def run(config: Optional[ExperimentConfig] = None, benchmark: str = "ii") -> ExperimentResult:
    return Fig02SolutionSpace().run(config, benchmark=benchmark)


def main() -> None:
    Fig02SolutionSpace.cli()


if __name__ == "__main__":
    main()
