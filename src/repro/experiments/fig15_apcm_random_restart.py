"""Fig. 15 — Poise vs an APCM-style bypass scheme and random-restart search.

Two alternative families the paper compares against (Section VII-J):

* an instruction-locality-based cache bypass/protect scheme (APCM), which
  manages the cache but never reduces multithreading — Poise outperforms it
  by 39.5% on average in the paper;
* random-restart stochastic search with the same local search Poise uses,
  which avoids local optima but starts from arbitrary points — Poise wins by
  22.4% on average in the paper.

The shape to reproduce: Poise above both alternatives on the harmonic mean.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import ExperimentResult, Table
from repro.experiments.common import (
    ArtifactSchema,
    ExperimentBase,
    ExperimentConfig,
    evaluate_schemes,
    evaluation_benchmark_names,
)
from repro.profiling.metrics import harmonic_mean

SCHEMES = ("gto", "apcm", "random_restart", "poise")
LABELS = {
    "gto": "GTO",
    "apcm": "APCM",
    "random_restart": "Random-restart",
    "poise": "Poise",
}


class Fig15ApcmRandomRestart(ExperimentBase):
    experiment_id = "fig15"
    artifact = "Figure 15"
    title = "Poise vs APCM and random-restart search"
    schema = ArtifactSchema(
        min_tables=1,
        required_scalars=tuple(f"hmean_{scheme}" for scheme in SCHEMES),
        required_tables=("IPC normalised to GTO",),
    )

    def build(self, config: ExperimentConfig) -> ExperimentResult:
        benchmarks = evaluation_benchmark_names()
        results = evaluate_schemes(SCHEMES, config, benchmarks=benchmarks)

        experiment = ExperimentResult(
            experiment_id="fig15",
            description="Poise vs APCM and random-restart search",
        )
        table = experiment.add_table(
            Table(
                title="Fig. 15 — IPC normalised to GTO",
                columns=["benchmark"] + [LABELS[s] for s in SCHEMES],
            )
        )
        for name in benchmarks:
            table.add_row(name, *[results[scheme][name].speedup for scheme in SCHEMES])
        hmean_row = ["H-Mean"]
        for scheme in SCHEMES:
            hmean_row.append(
                harmonic_mean(
                    [max(results[scheme][name].speedup, 1e-6) for name in benchmarks]
                )
            )
        table.add_row(*hmean_row)
        for scheme, value in zip(SCHEMES, hmean_row[1:]):
            experiment.scalars[f"hmean_{scheme}"] = value
        experiment.add_note(
            "Paper: Poise outperforms APCM by 39.5% and random-restart search by 22.4% on average."
        )
        return experiment


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    return Fig15ApcmRandomRestart().run(config)


def main() -> None:
    Fig15ApcmRandomRestart.cli()


if __name__ == "__main__":
    main()
