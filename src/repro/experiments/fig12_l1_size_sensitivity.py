"""Fig. 12 — sensitivity to the L1 cache size (16/32/64 KB, linear indexing).

The paper's robustness study: the regression model is trained once on the
16 KB hash-indexed baseline, then deployed unchanged on evaluation platforms
with a *linear* set-index function and L1 capacities of 16, 32 and 64 KB.
Poise keeps delivering speedups (48%, then 36.7% at 64 KB), showing both
that the learned mapping transfers across architectural changes and that
cache thrashing persists even with much larger caches.  The sweep is
declared as the ``fig12-l1-size`` :class:`~repro.scenarios.grid.ScenarioGrid`
(an ``l1_scale`` × ``l1_indexing`` architecture axis), and the point
evaluator trains the model on the base platform exactly as the paper does.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.tables import ExperimentResult, Table
from repro.experiments.common import (
    ArtifactSchema,
    ExperimentBase,
    ExperimentConfig,
    evaluation_benchmark_names,
)
from repro.profiling.metrics import harmonic_mean
from repro.scenarios.library import FIG12_SCALES, fig12_grid
from repro.scenarios.runner import evaluate_grid

DEFAULT_SCALES = FIG12_SCALES  # 16 KB, 32 KB, 64 KB


class Fig12L1SizeSensitivity(ExperimentBase):
    experiment_id = "fig12"
    artifact = "Figure 12"
    title = "Sensitivity to L1 cache size (linear indexing, pre-trained model)"
    schema = ArtifactSchema(
        min_tables=1,
        required_scalars=tuple(f"hmean_{16 * scale}KB" for scale in DEFAULT_SCALES),
        required_tables=("same-size GTO baseline",),
    )

    def build(
        self,
        config: ExperimentConfig,
        scales: Optional[List[int]] = None,
        benchmarks: Optional[List[str]] = None,
    ) -> ExperimentResult:
        scales = list(scales or DEFAULT_SCALES)
        benchmarks = list(benchmarks or evaluation_benchmark_names())
        grid = fig12_grid(scales=scales, benchmarks=benchmarks)
        speedup = {
            (point.benchmark, point.l1_scale): metrics["speedup"]
            for point, metrics in evaluate_grid(grid, config).items()
        }

        experiment = ExperimentResult(
            experiment_id="fig12",
            description="Sensitivity to L1 cache size (linear indexing, pre-trained model)",
        )
        size_labels = [f"Poise+{16 * scale}KB" for scale in scales]
        table = experiment.add_table(
            Table(
                title="Fig. 12 — IPC normalised to the same-size GTO baseline",
                columns=["benchmark"] + size_labels,
            )
        )
        per_scale: dict = {scale: [] for scale in scales}
        for name in benchmarks:
            row = [name]
            for scale in scales:
                value = speedup[(name, scale)]
                row.append(value)
                per_scale[scale].append(max(value, 1e-6))
            table.add_row(*row)
        hmean_row = ["H-Mean"] + [harmonic_mean(per_scale[scale]) for scale in scales]
        table.add_row(*hmean_row)
        for scale, value in zip(scales, hmean_row[1:]):
            experiment.scalars[f"hmean_{16 * scale}KB"] = value
        experiment.add_note(
            "Paper harmonic means: 1.48 at 16 KB, declining to 1.367 at 64 KB — Poise keeps "
            "helping on larger linearly-indexed caches despite being trained elsewhere."
        )
        return experiment


def run(
    config: Optional[ExperimentConfig] = None,
    scales: Optional[List[int]] = None,
) -> ExperimentResult:
    return Fig12L1SizeSensitivity().run(config, scales=scales)


def main() -> None:
    Fig12L1SizeSensitivity.cli()


if __name__ == "__main__":
    main()
