"""Fig. 8 — absolute L1 hit rate per scheme.

The paper reports average L1 hit rates of 20.6% (GTO), 37.7% (SWL), 27.1%
(PCAL-SWL), 40.1% (Poise) and 43.6% (Static-Best).  The shape to reproduce:
Poise and Static-Best highest, SWL close behind (it trades performance for
hit rate), PCAL-SWL noticeably lower, GTO lowest.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import ExperimentResult, Table
from repro.experiments.common import (
    EVALUATION_SCHEMES,
    ArtifactSchema,
    ExperimentBase,
    ExperimentConfig,
    evaluate_schemes,
    evaluation_benchmark_names,
)
from repro.experiments.fig07_performance import SCHEME_LABELS
from repro.profiling.metrics import arithmetic_mean


class Fig08L1HitRate(ExperimentBase):
    experiment_id = "fig08"
    artifact = "Figure 8"
    title = "Absolute L1 hit rate (%) per scheme"
    schema = ArtifactSchema(
        min_tables=1,
        required_scalars=tuple(f"mean_hit_{scheme}" for scheme in EVALUATION_SCHEMES),
        required_tables=("L1 hit rate",),
    )

    def build(self, config: ExperimentConfig) -> ExperimentResult:
        benchmarks = evaluation_benchmark_names()
        results = evaluate_schemes(EVALUATION_SCHEMES, config, benchmarks=benchmarks)

        experiment = ExperimentResult(
            experiment_id="fig08",
            description="Absolute L1 hit rate (%) per scheme",
        )
        table = experiment.add_table(
            Table(
                title="Fig. 8 — L1 hit rate (%)",
                columns=["benchmark"] + [SCHEME_LABELS[s] for s in EVALUATION_SCHEMES],
                precision=1,
            )
        )
        for name in benchmarks:
            table.add_row(
                name,
                *[
                    100.0 * results[scheme][name].l1_hit_rate
                    for scheme in EVALUATION_SCHEMES
                ],
            )
        mean_row = ["A-Mean"]
        for scheme in EVALUATION_SCHEMES:
            mean_row.append(
                arithmetic_mean(
                    [100.0 * results[scheme][name].l1_hit_rate for name in benchmarks]
                )
            )
        table.add_row(*mean_row)
        for index, scheme in enumerate(EVALUATION_SCHEMES):
            experiment.scalars[f"mean_hit_{scheme}"] = mean_row[1 + index]
        experiment.add_note(
            "Paper averages: GTO 20.6%, SWL 37.7%, PCAL-SWL 27.1%, Poise 40.1%, Static-Best 43.6%."
        )
        return experiment


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    return Fig08L1HitRate().run(config)


def main() -> None:
    Fig08L1HitRate.cli()


if __name__ == "__main__":
    main()
