"""Fig. 4 — L1 hit-rate breakdown at (N=max, p=1) for four workloads.

For each workload the paper shows, at one polluting warp:

* the hit rate of the polluting warps (``h_p``),
* the hit rate of the non-polluting warps (``h_np``),
* the baseline hit rate with everything polluting (``h_o``),
* the intra-warp / inter-warp split of baseline hits, and
* the reuse distance ``R``.

The expected shape: intra-warp-dominated, small-footprint workloads (ii,
mm-like) show a large ``h_p`` gain over ``h_o`` with ``h_np`` collapsing;
inter-warp-dominated workloads (ss, cfd-like) keep ``h_np`` close to ``h_o``;
large-footprint workloads (bfs) show little ``h_p`` gain at all.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

from repro.analysis.tables import ExperimentResult, Table
from repro.experiments.common import ArtifactSchema, ExperimentBase, ExperimentConfig
from repro.gpu.gpu import GPU
from repro.workloads.generator import generate_kernel_programs
from repro.workloads.registry import get_benchmark

#: The four workloads characterised by the paper's Fig. 4.  ``cfd`` is not in
#: the evaluation list; ``ss`` has the same inter-warp-dominated profile and
#: stands in for it.
DEFAULT_WORKLOADS = ("ii", "bfs", "syr2k", "ss")


def _measure(config: ExperimentConfig, benchmark: str) -> dict:
    spec = get_benchmark(benchmark).kernels[0]
    gpu_config = replace(config.gpu, track_reuse_distance=True)
    programs = generate_kernel_programs(spec)
    max_warps = min(gpu_config.max_warps, spec.num_warps)

    # Baseline: everything polluting.
    sm_base = GPU(gpu_config).build_sm(programs)
    sm_base.set_warp_tuple(max_warps, max_warps)
    sm_base.run_cycles(config.profile_warmup + config.profile_cycles)
    base = sm_base.counters

    # One polluting warp.
    sm_p1 = GPU(gpu_config).build_sm(programs)
    sm_p1.set_warp_tuple(max_warps, 1)
    sm_p1.run_cycles(config.profile_warmup + config.profile_cycles)
    split = sm_p1.counters

    return {
        "benchmark": benchmark,
        "h_p": split.polluting_hit_rate,
        "h_np": split.nonpolluting_hit_rate,
        "h_o": base.l1_hit_rate,
        "intra_share": base.intra_warp_hit_share,
        "inter_share": base.inter_warp_hit_share,
        "reuse_distance": sm_base.reuse_tracker.average_distance if sm_base.reuse_tracker else 0.0,
    }


class Fig04HitRateBreakdown(ExperimentBase):
    experiment_id = "fig04"
    artifact = "Figure 4"
    title = "L1 hit-rate breakdown at (N=max, p=1) for four workloads"
    schema = ArtifactSchema(
        min_tables=1,
        required_scalars=("ii_delta_hp",),
        required_tables=("hit-rate breakdown",),
    )

    def build(
        self, config: ExperimentConfig, workloads: Optional[List[str]] = None
    ) -> ExperimentResult:
        workloads = list(workloads or DEFAULT_WORKLOADS)

        experiment = ExperimentResult(
            experiment_id="fig04",
            description="L1 hit rate breakdown for N=max, p=1",
        )
        table = experiment.add_table(
            Table(
                title="Fig. 4 — hit-rate breakdown at p=1",
                columns=[
                    "benchmark",
                    "h_p",
                    "h_np",
                    "h_o (baseline)",
                    "intra-warp hit share",
                    "inter-warp hit share",
                    "reuse distance R",
                ],
            )
        )
        for name in workloads:
            row = _measure(config, name)
            table.add_row(
                row["benchmark"],
                row["h_p"],
                row["h_np"],
                row["h_o"],
                row["intra_share"],
                row["inter_share"],
                row["reuse_distance"],
            )
            experiment.scalars[f"{name}_delta_hp"] = row["h_p"] - row["h_o"]
        experiment.add_note(
            "Paper: ii 97% intra-warp hits (R=236), bfs 77% intra (R=1136), syr2k 40% intra "
            "(R=240), cfd 2% intra (R=3161); large delta h_p for ii/syr2k, small for bfs/cfd."
        )
        return experiment


def run(
    config: Optional[ExperimentConfig] = None,
    workloads: Optional[List[str]] = None,
) -> ExperimentResult:
    return Fig04HitRateBreakdown().run(config, workloads=workloads)


def main() -> None:
    Fig04HitRateBreakdown.cli()


if __name__ == "__main__":
    main()
