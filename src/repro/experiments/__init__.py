"""Experiment modules — one per table/figure of the paper.

Every module defines one :class:`~repro.experiments.common.ExperimentBase`
subclass (auto-discovered by :mod:`repro.experiments.registry` and exposed
through ``python -m repro``), plus thin module-level ``run(config)`` /
``main()`` shims kept for direct scripting.  The mapping from paper
table/figure to module is recorded in DESIGN.md §4 and EXPERIMENTS.md.
"""

from repro.experiments.common import (
    EVALUATION_SCHEMES,
    ArtifactSchema,
    ExperimentBase,
    ExperimentConfig,
    evaluate_schemes,
    preset_config,
    run_scheme_on_benchmark,
    run_scheme_on_kernel,
    train_or_load_model,
)

__all__ = [
    "EVALUATION_SCHEMES",
    "ArtifactSchema",
    "ExperimentBase",
    "ExperimentConfig",
    "evaluate_schemes",
    "preset_config",
    "run_scheme_on_benchmark",
    "run_scheme_on_kernel",
    "train_or_load_model",
]
