"""Experiment modules — one per table/figure of the paper.

Every module exposes ``run(config: ExperimentConfig | None) -> ExperimentResult``
and a ``main()`` entry point that prints the result.  The mapping from paper
table/figure to module is recorded in DESIGN.md §4 and EXPERIMENTS.md.
"""

from repro.experiments.common import (
    EVALUATION_SCHEMES,
    ExperimentConfig,
    evaluate_schemes,
    run_scheme_on_benchmark,
    run_scheme_on_kernel,
    train_or_load_model,
)

__all__ = [
    "EVALUATION_SCHEMES",
    "ExperimentConfig",
    "evaluate_schemes",
    "run_scheme_on_benchmark",
    "run_scheme_on_kernel",
    "train_or_load_model",
]
