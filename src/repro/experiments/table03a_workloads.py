"""Table IIIa — training and evaluation workloads with their Pbest.

``Pbest`` is the speedup observed with a 64x larger L1 cache; the paper uses
``Pbest > 1.4`` as the memory-sensitivity criterion and sorts the evaluation
set by it.  The reproduction measures Pbest for every benchmark (averaged
over its kernels) and reports the training/evaluation split, kernel counts
and memory-sensitivity classification.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import ExperimentResult, Table
from repro.experiments.common import ArtifactSchema, ExperimentBase, ExperimentConfig
from repro.profiling.metrics import arithmetic_mean
from repro.profiling.profiler import measure_pbest
from repro.workloads.registry import (
    compute_intensive_benchmarks,
    evaluation_benchmarks,
    training_benchmarks,
)


class Table03aWorkloads(ExperimentBase):
    experiment_id = "table03a"
    artifact = "Table IIIa"
    title = "Training and evaluation workloads (Pbest = speedup with 64x L1)"
    schema = ArtifactSchema(
        min_tables=1,
        required_scalars=("pbest_ii", "pbest_bfs"),
        required_tables=("workloads",),
    )

    def build(self, config: ExperimentConfig) -> ExperimentResult:
        experiment = ExperimentResult(
            experiment_id="table03a",
            description="Training and evaluation workloads (Pbest = speedup with 64x L1)",
        )
        table = experiment.add_table(
            Table(
                title="Table IIIa — workloads",
                columns=["role", "suite", "benchmark", "kernels", "Pbest", "memory-sensitive"],
            )
        )
        groups = (
            ("training", training_benchmarks()),
            ("evaluation", evaluation_benchmarks()),
            ("compute", compute_intensive_benchmarks()),
        )
        for role, benchmarks in groups:
            for benchmark in benchmarks:
                kernels = config.limited_kernels(benchmark, training=(role == "training"))
                pbest_values = [
                    measure_pbest(spec, config.gpu, cycles=config.profile_cycles)
                    for spec in kernels
                ]
                pbest = arithmetic_mean(pbest_values)
                table.add_row(
                    role,
                    benchmark.suite,
                    benchmark.name,
                    benchmark.num_kernels,
                    pbest,
                    "yes" if pbest > 1.4 else "no",
                )
                experiment.scalars[f"pbest_{benchmark.name}"] = pbest
        experiment.add_note(
            "Paper Pbest ranges from 1.42x (kmeans) to 14.13x (syr2k) for the evaluation set "
            "and 1.49-3.43x for training; compute-intensive applications are below 1.2x."
        )
        return experiment


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    return Table03aWorkloads().run(config)


def main() -> None:
    Table03aWorkloads.cli()


if __name__ == "__main__":
    main()
