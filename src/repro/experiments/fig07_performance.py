"""Fig. 7 — IPC of SWL, PCAL-SWL, Poise and Static-Best normalised to GTO.

The paper reports a harmonic-mean speedup of 46.6% for Poise (up to 2.94x on
``mm``), 31.5% for PCAL-SWL, 21.8% for SWL and 52.8% for Static-Best.  The
reproduction regenerates the same per-benchmark bars and the harmonic mean
row; the expected *shape* is Poise > PCAL-SWL > SWL > GTO with Static-Best a
few percent above Poise.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import ExperimentResult, Table
from repro.experiments.common import (
    EVALUATION_SCHEMES,
    ArtifactSchema,
    ExperimentBase,
    ExperimentConfig,
    evaluate_schemes,
    evaluation_benchmark_names,
)
from repro.profiling.metrics import harmonic_mean

SCHEME_LABELS = {
    "gto": "GTO",
    "swl": "SWL",
    "pcal": "PCAL-SWL",
    "poise": "Poise",
    "static_best": "Static-Best",
}


class Fig07Performance(ExperimentBase):
    experiment_id = "fig07"
    artifact = "Figure 7"
    title = "Performance improvement (IPC normalised to GTO)"
    schema = ArtifactSchema(
        min_tables=1,
        required_scalars=tuple(f"hmean_{scheme}" for scheme in EVALUATION_SCHEMES)
        + ("max_poise",),
        required_tables=("IPC normalised to GTO",),
    )

    def build(self, config: ExperimentConfig) -> ExperimentResult:
        benchmarks = evaluation_benchmark_names()
        results = evaluate_schemes(EVALUATION_SCHEMES, config, benchmarks=benchmarks)

        experiment = ExperimentResult(
            experiment_id="fig07",
            description="Performance improvement (IPC normalised to GTO)",
        )
        table = experiment.add_table(
            Table(
                title="Fig. 7 — IPC normalised to GTO",
                columns=["benchmark"] + [SCHEME_LABELS[s] for s in EVALUATION_SCHEMES],
            )
        )
        for name in benchmarks:
            table.add_row(
                name, *[results[scheme][name].speedup for scheme in EVALUATION_SCHEMES]
            )
        hmean_row = ["H-Mean"]
        for scheme in EVALUATION_SCHEMES:
            speedups = [results[scheme][name].speedup for name in benchmarks]
            hmean_row.append(harmonic_mean([max(s, 1e-6) for s in speedups]))
        table.add_row(*hmean_row)

        for scheme in EVALUATION_SCHEMES:
            experiment.scalars[f"hmean_{scheme}"] = hmean_row[
                1 + EVALUATION_SCHEMES.index(scheme)
            ]
        experiment.scalars["max_poise"] = max(
            results["poise"][name].speedup for name in benchmarks
        )
        experiment.add_note(
            "Paper: Poise H-mean 1.466 (max 2.94x on mm), PCAL-SWL 1.315, SWL 1.218, "
            "Static-Best 1.528."
        )
        return experiment


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    return Fig07Performance().run(config)


def main() -> None:
    Fig07Performance.cli()


if __name__ == "__main__":
    main()
