"""Section VII-I — hardware storage cost of Poise (~41 bytes per SM)."""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import ExperimentResult, Table
from repro.core.hardware_cost import HardwareCostModel
from repro.experiments.common import ArtifactSchema, ExperimentBase, ExperimentConfig


class Sec7iHardwareCost(ExperimentBase):
    experiment_id = "sec7i"
    artifact = "Section VII-I"
    title = "Hardware storage overhead of Poise"
    schema = ArtifactSchema(
        min_tables=2,
        required_scalars=("bytes_per_sm", "bytes_total"),
        required_tables=("storage inventory", "totals"),
    )

    def build(self, config: ExperimentConfig) -> ExperimentResult:
        cost = HardwareCostModel()
        experiment = ExperimentResult(
            experiment_id="sec7i",
            description="Hardware storage overhead of Poise",
        )
        table = experiment.add_table(
            Table(title="Sec. VII-I — storage inventory per SM", columns=["item", "bits"])
        )
        table.add_row("performance counters (7 x 32b)", cost.counter_bits_total)
        table.add_row("inference FSM state (2 x 3b)", cost.fsm_bits_total)
        table.add_row("vital + pollute bits (48 warps x 2b)", cost.warp_bits_total)
        table.add_row("total bits per SM", cost.bits_per_sm)

        summary = experiment.add_table(
            Table(title="Sec. VII-I — totals", columns=["quantity", "value"], precision=2)
        )
        summary.add_row("bytes per SM", cost.bytes_per_sm)
        summary.add_row("bytes chip-wide (32 SMs)", cost.bytes_total)
        experiment.scalars["bytes_per_sm"] = cost.bytes_per_sm
        experiment.scalars["bytes_total"] = cost.bytes_total
        experiment.add_note("Paper: 40.75 bytes per SM, 1,304 bytes total, <0.01% of chip area.")
        return experiment


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    return Sec7iHardwareCost().run(config)


def main() -> None:
    Sec7iHardwareCost.cli()


if __name__ == "__main__":
    main()
