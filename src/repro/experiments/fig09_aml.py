"""Fig. 9 — average memory latency (AML) normalised to GTO.

The paper reports Poise increasing AML by only 1.1% over GTO while PCAL-SWL
increases it by 32.4% and SWL decreases it by 10.7%; Static-Best tolerates a
14.1% increase.  The shape to reproduce: SWL below 1.0, Poise near or below
1.0, PCAL-SWL above Poise.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import ExperimentResult, Table
from repro.experiments.common import (
    EVALUATION_SCHEMES,
    ArtifactSchema,
    ExperimentBase,
    ExperimentConfig,
    evaluate_schemes,
    evaluation_benchmark_names,
)
from repro.experiments.fig07_performance import SCHEME_LABELS
from repro.profiling.metrics import arithmetic_mean


class Fig09AML(ExperimentBase):
    experiment_id = "fig09"
    artifact = "Figure 9"
    title = "Average memory latency normalised to GTO"
    schema = ArtifactSchema(
        min_tables=1,
        required_scalars=tuple(f"mean_aml_{scheme}" for scheme in EVALUATION_SCHEMES),
        required_tables=("AML",),
    )

    def build(self, config: ExperimentConfig) -> ExperimentResult:
        benchmarks = evaluation_benchmark_names()
        results = evaluate_schemes(EVALUATION_SCHEMES, config, benchmarks=benchmarks)

        experiment = ExperimentResult(
            experiment_id="fig09",
            description="Average memory latency normalised to GTO",
        )
        table = experiment.add_table(
            Table(
                title="Fig. 9 — AML (normalised to GTO)",
                columns=["benchmark"] + [SCHEME_LABELS[s] for s in EVALUATION_SCHEMES],
            )
        )
        for name in benchmarks:
            table.add_row(
                name, *[results[scheme][name].aml_ratio for scheme in EVALUATION_SCHEMES]
            )
        mean_row = ["A-Mean"]
        for scheme in EVALUATION_SCHEMES:
            mean_row.append(
                arithmetic_mean([results[scheme][name].aml_ratio for name in benchmarks])
            )
        table.add_row(*mean_row)
        for index, scheme in enumerate(EVALUATION_SCHEMES):
            experiment.scalars[f"mean_aml_{scheme}"] = mean_row[1 + index]
        experiment.add_note(
            "Paper averages: Poise +1.1%, PCAL-SWL +32.4%, SWL -10.7%, Static-Best +14.1% vs GTO."
        )
        return experiment


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    return Fig09AML().run(config)


def main() -> None:
    Fig09AML.cli()


if __name__ == "__main__":
    main()
