"""Table IIIb — baseline architecture parameters.

Reports the simulated architecture side by side with the paper's GPGPU-Sim
configuration, including the single-SM scaling decisions documented in
DESIGN.md §2 (per-scheduler view, L2 slice, per-SM DRAM bandwidth share).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import ExperimentResult, Table
from repro.experiments.common import ArtifactSchema, ExperimentBase, ExperimentConfig


class Table03bArchitecture(ExperimentBase):
    experiment_id = "table03b"
    artifact = "Table IIIb"
    title = "Baseline architecture parameters"
    schema = ArtifactSchema(min_tables=1, required_tables=("architecture",))

    def build(self, config: ExperimentConfig) -> ExperimentResult:
        gpu = config.gpu

        experiment = ExperimentResult(
            experiment_id="table03b",
            description="Baseline architecture parameters",
        )
        table = experiment.add_table(
            Table(
                title="Table IIIb — architecture",
                columns=["parameter", "paper", "this model"],
            )
        )
        simulated = (
            f"{gpu.num_sms} simulated, sharing L2/DRAM"
            if gpu.num_sms > 1
            else f"{gpu.num_sms} simulated (symmetric single-SM view)"
        )
        rows = [
            ("SMs", "32", simulated),
            ("Schedulers per SM", "2 x GTO", "1 x GTO (per-scheduler view)"),
            ("Max warps per scheduler", "24", str(gpu.sm.max_warps)),
            ("Max threads per SM", "1536", str(gpu.sm.max_warps * gpu.sm.warp_size * 2)),
            ("SIMD width", "32", str(gpu.sm.warp_size)),
            (
                "L1 data cache",
                "16KB, 32 sets, 4-way, 128B, hashed, 32 MSHRs",
                f"{gpu.l1.size_bytes // 1024}KB, {gpu.l1.num_sets} sets, {gpu.l1.assoc}-way, "
                f"{gpu.l1.line_size}B, {gpu.l1.indexing}, {gpu.l1.mshr_entries} MSHRs",
            ),
            (
                "L2 cache",
                "2.25 MB, 24 banks, 8-way, 128B",
                f"{gpu.memory.l2.size_bytes // 1024}KB per-SM slice, {gpu.memory.l2.assoc}-way, "
                f"{gpu.memory.l2.line_size}B",
            ),
            (
                "DRAM",
                "GDDR5 @ 924 MHz, 6 partitions, 384-bit",
                f"{gpu.memory.dram_latency}-cycle latency, one line per "
                f"{gpu.memory.dram_service_interval} cycles per SM share",
            ),
            ("L2 latency", "(interconnect + L2)", f"{gpu.memory.l2_latency} cycles"),
        ]
        for parameter, paper_value, ours in rows:
            table.add_row(parameter, paper_value, ours)
        return experiment


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    return Table03bArchitecture().run(config)


def main() -> None:
    Table03bArchitecture.cli()


if __name__ == "__main__":
    main()
