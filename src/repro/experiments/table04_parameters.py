"""Table IV — Poise's timing, search and threshold parameters.

Reports the paper's values (``PoiseParameters.paper()``) and the scaled
values actually used by the reproduction's experiment configuration, with
the scaling rationale.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import ExperimentResult, Table
from repro.core.inference import PoiseParameters
from repro.experiments.common import ArtifactSchema, ExperimentBase, ExperimentConfig


class Table04Parameters(ExperimentBase):
    experiment_id = "table04"
    artifact = "Table IV"
    title = "Poise parameters (paper values vs reproduction values)"
    schema = ArtifactSchema(min_tables=1, required_tables=("Poise parameters",))

    def build(self, config: ExperimentConfig) -> ExperimentResult:
        paper = PoiseParameters.paper()
        used = config.poise_params

        experiment = ExperimentResult(
            experiment_id="table04",
            description="Poise parameters (paper values vs reproduction values)",
        )
        table = experiment.add_table(
            Table(
                title="Table IV — Poise parameters",
                columns=["parameter", "paper", "this run"],
            )
        )
        rows = [
            (
                "scoring weights (w0, w1, w2)",
                str(paper.scoring_weights),
                str(used.scoring_weights),
            ),
            ("T_period (cycles)", paper.t_period, used.t_period),
            ("T_warmup (cycles)", paper.t_warmup, config.feature_warmup),
            ("T_feature (cycles)", paper.t_feature, config.feature_cycles),
            ("T_search (cycles)", paper.t_search, used.t_search),
            ("I_max (instructions between loads)", paper.i_max, used.i_max),
            ("epsilon_N (search stride)", paper.stride_n, used.stride_n),
            ("epsilon_p (search stride)", paper.stride_p, used.stride_p),
            ("threshold speedup", paper.threshold_speedup, used.threshold_speedup),
            ("threshold cycles", paper.threshold_cycles, used.threshold_cycles),
            ("threshold hit rate", paper.threshold_hit_rate, used.threshold_hit_rate),
        ]
        for parameter, paper_value, ours in rows:
            table.add_row(parameter, paper_value, ours)
        experiment.add_note(
            "Timing parameters are scaled down because the reproduction's synthetic kernels "
            "are far shorter than the paper's 4-billion-instruction runs; ratios of sampling "
            "time to epoch length are preserved."
        )
        return experiment


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    return Table04Parameters().run(config)


def main() -> None:
    Table04Parameters.cli()


if __name__ == "__main__":
    main()
