"""Table II — the feature vector and the learned feature weights (α, β).

The reproduction retrains (or loads) the regression and reports the fitted
weight for every feature and both targets.  Absolute weight values depend on
the substrate, so the comparison with the paper is qualitative: eight
features, one α and one β weight each, produced by a Negative Binomial fit
on the training split only.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import ExperimentResult, Table
from repro.core.features import FEATURE_NAMES
from repro.experiments.common import (
    ArtifactSchema,
    ExperimentBase,
    ExperimentConfig,
    train_or_load_model,
)


class Table02FeatureWeights(ExperimentBase):
    experiment_id = "table02"
    artifact = "Table II"
    title = "Feature vector X and learned weights (alpha for N, beta for p)"
    schema = ArtifactSchema(
        min_tables=1,
        required_scalars=("num_training_kernels", "dispersion_n", "dispersion_p"),
        required_tables=("features and weights",),
    )

    def build(self, config: ExperimentConfig) -> ExperimentResult:
        model = train_or_load_model(config)

        experiment = ExperimentResult(
            experiment_id="table02",
            description="Feature vector X and learned weights (alpha for N, beta for p)",
        )
        table = experiment.add_table(
            Table(
                title="Table II — features and weights",
                columns=["feature", "alpha (N)", "beta (p)"],
                precision=6,
            )
        )
        for name, alpha, beta in zip(FEATURE_NAMES, model.alpha_weights, model.beta_weights):
            table.add_row(name, alpha, beta)
        experiment.scalars["num_training_kernels"] = float(model.num_training_kernels)
        experiment.scalars["dispersion_n"] = model.dispersion_n
        experiment.scalars["dispersion_p"] = model.dispersion_p
        experiment.add_note(
            "Weights are substrate-specific; the paper's Table II values were fitted on "
            "GPGPU-Sim profiles.  The structural property reproduced is the 8-feature "
            "log-linear mapping trained once, offline, on the training split."
        )
        return experiment


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    return Table02FeatureWeights().run(config)


def main() -> None:
    Table02FeatureWeights.cli()


if __name__ == "__main__":
    main()
