"""Fig. 10 — displacement between predicted and locally-searched warp-tuples.

For every Poise inference epoch the engine records the warp-tuple predicted
by the regression and the tuple the local search converges to.  The paper
reports average displacements of 1.02 warps along N, 0.87 along p and an
average Euclidean distance of 1.59 — i.e. the search typically moves by
about one warp in each axis, evidence that the prediction lands near the
final answer and the search overhead is small.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import ExperimentResult, Table
from repro.experiments.common import (
    ArtifactSchema,
    ExperimentBase,
    ExperimentConfig,
    evaluation_benchmark_names,
    run_scheme_on_benchmark,
    train_or_load_model,
)
from repro.profiling.metrics import arithmetic_mean


class Fig10Displacement(ExperimentBase):
    experiment_id = "fig10"
    artifact = "Figure 10"
    title = "Displacement between predicted and converged warp-tuples"
    schema = ArtifactSchema(
        min_tables=1,
        required_scalars=(
            "mean_displacement_n",
            "mean_displacement_p",
            "mean_displacement_euclidean",
        ),
        required_tables=("displacement",),
    )

    def build(self, config: ExperimentConfig) -> ExperimentResult:
        model = train_or_load_model(config)
        benchmarks = evaluation_benchmark_names()

        experiment = ExperimentResult(
            experiment_id="fig10",
            description="Displacement between predicted and converged warp-tuples",
        )
        table = experiment.add_table(
            Table(
                title="Fig. 10 — absolute displacement",
                columns=["benchmark", "N-axis", "p-axis", "Euclidean"],
            )
        )
        means_n, means_p, means_e = [], [], []
        for name in benchmarks:
            outcome = run_scheme_on_benchmark("poise", name, config, model=model)
            per_kernel_n, per_kernel_p, per_kernel_e = [], [], []
            for telemetry in outcome.telemetry.values():
                per_kernel_n.append(telemetry.get("mean_displacement_n", 0.0))
                per_kernel_p.append(telemetry.get("mean_displacement_p", 0.0))
                per_kernel_e.append(telemetry.get("mean_displacement_euclidean", 0.0))
            row_n = arithmetic_mean(per_kernel_n) if per_kernel_n else 0.0
            row_p = arithmetic_mean(per_kernel_p) if per_kernel_p else 0.0
            row_e = arithmetic_mean(per_kernel_e) if per_kernel_e else 0.0
            means_n.append(row_n)
            means_p.append(row_p)
            means_e.append(row_e)
            table.add_row(name, row_n, row_p, row_e)
        table.add_row(
            "A-Mean",
            arithmetic_mean(means_n),
            arithmetic_mean(means_p),
            arithmetic_mean(means_e),
        )
        experiment.scalars["mean_displacement_n"] = arithmetic_mean(means_n)
        experiment.scalars["mean_displacement_p"] = arithmetic_mean(means_p)
        experiment.scalars["mean_displacement_euclidean"] = arithmetic_mean(means_e)
        experiment.add_note(
            "Paper averages: 1.02 (N-axis), 0.87 (p-axis), 1.59 (Euclidean)."
        )
        return experiment


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    return Fig10Displacement().run(config)


def main() -> None:
    Fig10Displacement.cli()


if __name__ == "__main__":
    main()
