"""Fig. 5 — scoring performance peaks to avoid performance cliffs.

For two kernels the paper contrasts the raw performance peak with the
best-*scoring* point (Eq. 12): the scored target sits in a safer
neighbourhood even if its raw speedup is slightly lower.  The reproduction
profiles two kernels, applies the same scoring, and reports both points and
their speedups; the property to reproduce is ``score-selected speedup <=
peak speedup`` with the scored point never lying next to a cliff
(neighbourhood mean higher than the peak's neighbourhood mean).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.tables import ExperimentResult, Table
from repro.core.scoring import best_raw_point, select_training_target
from repro.experiments.common import (
    ArtifactSchema,
    ExperimentBase,
    ExperimentConfig,
    get_profile,
)
from repro.workloads.registry import get_benchmark

DEFAULT_KERNELS: Tuple[Tuple[str, int], ...] = (("ii", 0), ("ii", 1))


def _neighbourhood_mean(grid, point) -> float:
    values = []
    for di in (-1, 0, 1):
        for dj in (-1, 0, 1):
            neighbour = (point[0] + di, point[1] + dj)
            if neighbour in grid:
                values.append(grid[neighbour])
    return sum(values) / len(values) if values else 0.0


class Fig05Scoring(ExperimentBase):
    experiment_id = "fig05"
    artifact = "Figure 5"
    title = "Scoring performance peaks vs cliffs (Eq. 12)"
    schema = ArtifactSchema(min_tables=1, required_tables=("raw peak",))

    def build(
        self,
        config: ExperimentConfig,
        kernels: Optional[List[Tuple[str, int]]] = None,
    ) -> ExperimentResult:
        kernels = list(kernels or DEFAULT_KERNELS)

        experiment = ExperimentResult(
            experiment_id="fig05",
            description="Scoring performance peaks vs cliffs (Eq. 12)",
        )
        table = experiment.add_table(
            Table(
                title="Fig. 5 — raw peak vs best score",
                columns=[
                    "kernel",
                    "peak (N,p)",
                    "peak speedup",
                    "scored (N,p)",
                    "scored speedup",
                    "peak nbhd mean",
                    "scored nbhd mean",
                ],
            )
        )
        for benchmark_name, kernel_index in kernels:
            benchmark = get_benchmark(benchmark_name)
            spec = benchmark.kernels[min(kernel_index, len(benchmark.kernels) - 1)]
            profile = get_profile(spec, config)
            grid = profile.speedup_grid()
            peak = best_raw_point(grid)
            scored = select_training_target(grid, config.poise_params.scoring_weights)
            table.add_row(
                spec.name,
                str(peak.point),
                peak.speedup,
                str(scored.point),
                scored.speedup,
                _neighbourhood_mean(grid, peak.point),
                _neighbourhood_mean(grid, scored.point),
            )
            experiment.scalars[f"{spec.name}_peak_speedup"] = peak.speedup
            experiment.scalars[f"{spec.name}_scored_speedup"] = scored.speedup
        experiment.add_note(
            "Paper: ii kernel#34 peak (6,5) 1.08x vs scored (8,8) 1.06x; kernel#35 peak "
            "(11,4) 1.15x vs scored (7,6) 1.14x — the scored target trades a little speedup "
            "for distance from cliffs."
        )
        return experiment


def run(
    config: Optional[ExperimentConfig] = None,
    kernels: Optional[List[Tuple[str, int]]] = None,
) -> ExperimentResult:
    return Fig05Scoring().run(config, kernels=kernels)


def main() -> None:
    Fig05Scoring.cli()


if __name__ == "__main__":
    main()
