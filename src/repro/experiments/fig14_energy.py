"""Fig. 14 — energy consumption of Poise normalised to GTO.

The paper reports an average energy reduction of 51.6% (up to 79.4% on
``mm``), driven by shorter execution (less leakage) and fewer off-chip
accesses.  The shape to reproduce: Poise's normalised energy below 1.0 for
every memory-sensitive benchmark, with the largest savings on the largest
speedups.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import ExperimentResult, Table
from repro.experiments.common import (
    ArtifactSchema,
    ExperimentBase,
    ExperimentConfig,
    evaluate_schemes,
    evaluation_benchmark_names,
)
from repro.profiling.metrics import arithmetic_mean


class Fig14Energy(ExperimentBase):
    experiment_id = "fig14"
    artifact = "Figure 14"
    title = "Energy consumption normalised to GTO"
    schema = ArtifactSchema(
        min_tables=1,
        required_scalars=("mean_energy_ratio", "min_energy_ratio"),
        required_tables=("Energy",),
    )

    def build(self, config: ExperimentConfig) -> ExperimentResult:
        benchmarks = evaluation_benchmark_names()
        results = evaluate_schemes(("gto", "poise"), config, benchmarks=benchmarks)

        experiment = ExperimentResult(
            experiment_id="fig14",
            description="Energy consumption normalised to GTO",
        )
        table = experiment.add_table(
            Table(
                title="Fig. 14 — Energy (normalised to GTO)",
                columns=["benchmark", "GTO", "Poise"],
            )
        )
        ratios = []
        for name in benchmarks:
            ratio = results["poise"][name].energy_ratio
            ratios.append(ratio)
            table.add_row(name, 1.0, ratio)
        table.add_row("A-Mean", 1.0, arithmetic_mean(ratios))
        experiment.scalars["mean_energy_ratio"] = arithmetic_mean(ratios)
        experiment.scalars["min_energy_ratio"] = min(ratios)
        experiment.add_note(
            "Paper: Poise reduces energy by 51.6% on average (ratio 0.484), up to 79.4% on mm."
        )
        return experiment


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    return Fig14Energy().run(config)


def main() -> None:
    Fig14Energy.cli()


if __name__ == "__main__":
    main()
