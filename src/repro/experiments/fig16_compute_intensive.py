"""Fig. 16 — Poise on compute-intensive (memory-insensitive) applications.

Poise detects compute-intensive kernels through the ``In > Imax`` cut-off and
falls back to maximum warps, so the paper measures only a 1.6% average
overhead (3.5% worst case) on seven memory-insensitive applications.  The
shape to reproduce: Poise within a few percent of GTO on every benchmark,
with the compute-intensive detector firing in (nearly) every epoch; Pbest
(the 64x-L1 speedup) is also reported to confirm these workloads are indeed
memory-insensitive.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import ExperimentResult, Table
from repro.experiments.common import (
    ArtifactSchema,
    ExperimentBase,
    ExperimentConfig,
    compute_benchmark_names,
    run_scheme_on_benchmark,
    train_or_load_model,
)
from repro.profiling.metrics import harmonic_mean
from repro.profiling.profiler import measure_pbest
from repro.workloads.registry import get_benchmark


class Fig16ComputeIntensive(ExperimentBase):
    experiment_id = "fig16"
    artifact = "Figure 16"
    title = "Poise on memory-insensitive applications"
    schema = ArtifactSchema(
        min_tables=1,
        required_scalars=("hmean_poise", "min_poise"),
        required_tables=("compute-intensive",),
    )

    def build(self, config: ExperimentConfig) -> ExperimentResult:
        model = train_or_load_model(config)
        benchmarks = compute_benchmark_names()

        experiment = ExperimentResult(
            experiment_id="fig16",
            description="Poise on memory-insensitive applications",
        )
        table = experiment.add_table(
            Table(
                title="Fig. 16 — IPC normalised to GTO (compute-intensive apps)",
                columns=[
                    "benchmark",
                    "GTO",
                    "Poise",
                    "Pbest (64x L1)",
                    "compute-intensive epochs",
                ],
            )
        )
        speedups = []
        for name in benchmarks:
            outcome = run_scheme_on_benchmark("poise", name, config, model=model)
            spec = get_benchmark(name).kernels[0]
            pbest = measure_pbest(spec, config.gpu, cycles=config.profile_cycles)
            bypassed = sum(
                telemetry.get("compute_intensive_epochs", 0)
                for telemetry in outcome.telemetry.values()
            )
            speedups.append(max(outcome.speedup, 1e-6))
            table.add_row(name, 1.0, outcome.speedup, pbest, bypassed)
        table.add_row("H-Mean", 1.0, harmonic_mean(speedups), float("nan"), 0)
        experiment.scalars["hmean_poise"] = harmonic_mean(speedups)
        experiment.scalars["min_poise"] = min(speedups)
        experiment.add_note(
            "Paper: 1.6% average overhead, 3.5% worst case (sradv2); Poise reverts to "
            "maximum warps when In exceeds the Imax cut-off."
        )
        return experiment


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    return Fig16ComputeIntensive().run(config)


def main() -> None:
    Fig16ComputeIntensive.cli()


if __name__ == "__main__":
    main()
