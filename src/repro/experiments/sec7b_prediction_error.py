"""Section VII-B — offline prediction accuracy on unseen kernels.

The trained model is applied to profiled kernels from the *evaluation* set
(never seen during training) and the predicted warp-tuples are compared with
each kernel's scored best tuple.  The paper reports mean errors of 16% for N
and 26% for p; the reproduction reports the same two numbers plus the
per-kernel detail.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import ExperimentResult, Table
from repro.core.scoring import select_training_target
from repro.experiments.common import (
    ArtifactSchema,
    ExperimentBase,
    ExperimentConfig,
    get_profile,
    train_or_load_model,
)
from repro.profiling.metrics import arithmetic_mean
from repro.workloads.registry import evaluation_benchmarks


class Sec7bPredictionError(ExperimentBase):
    experiment_id = "sec7b"
    artifact = "Section VII-B"
    title = "Offline prediction error on unseen (evaluation) kernels"
    schema = ArtifactSchema(
        min_tables=1,
        required_scalars=("mean_error_n", "mean_error_p"),
        required_tables=("prediction error",),
    )

    def build(self, config: ExperimentConfig) -> ExperimentResult:
        model = train_or_load_model(config)
        pipeline = config.training_pipeline()

        experiment = ExperimentResult(
            experiment_id="sec7b",
            description="Offline prediction error on unseen (evaluation) kernels",
        )
        table = experiment.add_table(
            Table(
                title="Sec. VII-B — per-kernel prediction error",
                columns=["kernel", "target (N,p)", "predicted (N,p)", "error N", "error p"],
            )
        )
        errors_n, errors_p = [], []
        for benchmark in evaluation_benchmarks():
            for spec in config.limited_kernels(benchmark):
                profile = get_profile(spec, config)
                target = select_training_target(
                    profile.speedup_grid(), config.poise_params.scoring_weights
                )
                features = pipeline.sample_features(spec)
                predicted = model.predict(features, max_warps=profile.max_warps)
                error_n = abs(predicted[0] - target.point[0]) / max(1, target.point[0])
                error_p = abs(predicted[1] - target.point[1]) / max(1, target.point[1])
                errors_n.append(error_n)
                errors_p.append(error_p)
                table.add_row(spec.name, str(target.point), str(predicted), error_n, error_p)
        table.add_row(
            "MEAN", "", "", arithmetic_mean(errors_n), arithmetic_mean(errors_p)
        )
        experiment.scalars["mean_error_n"] = arithmetic_mean(errors_n)
        experiment.scalars["mean_error_p"] = arithmetic_mean(errors_p)
        experiment.add_note("Paper: mean prediction error 16% for N and 26% for p.")
        return experiment


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    return Sec7bPredictionError().run(config)


def main() -> None:
    Sec7bPredictionError.cli()


if __name__ == "__main__":
    main()
