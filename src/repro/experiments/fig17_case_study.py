"""Fig. 17 — case study: static profile of ``bfs`` vs Poise's runtime choices.

The paper overlays (a) the offline speedup profile of ``bfs`` with (b) the
warp-tuples Poise predicts and then converges to at runtime, showing that the
predictions land in the high-performance region and avoid the low-performance
zones.  The reproduction reports the profile's best region, every predicted
and searched tuple, and how each visited tuple ranks within the static
profile (percentile of its speedup).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import ExperimentResult, Table
from repro.experiments.common import (
    ArtifactSchema,
    ExperimentBase,
    ExperimentConfig,
    get_profile,
    run_scheme_on_benchmark,
    train_or_load_model,
)
from repro.workloads.registry import get_benchmark


def _percentile_of(grid: dict, point) -> float:
    """Fraction of profiled points whose speedup is below the given point's."""
    if point not in grid:
        # Rank against the nearest profiled point.
        point = min(grid, key=lambda q: (q[0] - point[0]) ** 2 + (q[1] - point[1]) ** 2)
    value = grid[point]
    below = sum(1 for other in grid.values() if other < value)
    return below / max(1, len(grid) - 1)


class Fig17CaseStudy(ExperimentBase):
    experiment_id = "fig17"
    artifact = "Figure 17"
    title = "Case study: static profile vs Poise runtime warp-tuples"
    schema = ArtifactSchema(
        min_tables=2,
        required_scalars=("best_speedup",),
        required_tables=("static profile summary", "runtime warp-tuples"),
    )

    def build(self, config: ExperimentConfig, benchmark: str = "bfs") -> ExperimentResult:
        model = train_or_load_model(config)
        spec = get_benchmark(benchmark).kernels[0]
        profile = get_profile(spec, config)
        grid = profile.speedup_grid()

        outcome = run_scheme_on_benchmark("poise", benchmark, config, model=model)

        experiment = ExperimentResult(
            experiment_id="fig17",
            description=f"Case study: static profile vs Poise runtime tuples ({benchmark})",
        )
        profile_table = experiment.add_table(
            Table(title="Fig. 17a — static profile summary", columns=["quantity", "value"])
        )
        best = profile.best_point()
        profile_table.add_row("best point", str(best))
        profile_table.add_row("best speedup", profile.speedup(*best))
        profile_table.add_row("profiled points", len(grid))

        runtime_table = experiment.add_table(
            Table(
                title="Fig. 17b — Poise runtime warp-tuples",
                columns=["kernel", "epoch", "predicted", "searched", "profile percentile"],
            )
        )
        percentiles = []
        for kernel_name, telemetry in outcome.telemetry.items():
            predicted = telemetry.get("predicted_tuples", [])
            searched = telemetry.get("searched_tuples", [])
            for epoch, (pred, found) in enumerate(zip(predicted, searched)):
                percentile = _percentile_of(grid, tuple(found))
                percentiles.append(percentile)
                runtime_table.add_row(
                    kernel_name, epoch, str(tuple(pred)), str(tuple(found)), percentile
                )

        if percentiles:
            experiment.scalars["mean_percentile"] = sum(percentiles) / len(percentiles)
        experiment.scalars["best_speedup"] = profile.speedup(*best)
        experiment.add_note(
            "Paper: bfs's best tuple is (5,5); Poise's predictions cluster near the "
            "high-performance zone and avoid the slow region at high N and moderate-to-high p."
        )
        return experiment


def run(config: Optional[ExperimentConfig] = None, benchmark: str = "bfs") -> ExperimentResult:
    return Fig17CaseStudy().run(config, benchmark=benchmark)


def main() -> None:
    Fig17CaseStudy.cli()


if __name__ == "__main__":
    main()
