"""Auto-discovered registry of every experiment in the evaluation suite.

Every ``fig*``/``table*``/``sec*`` module under :mod:`repro.experiments`
must define exactly one :class:`~repro.experiments.common.ExperimentBase`
subclass; discovery imports each module, harvests the subclass and exposes
it as a declarative :class:`Experiment` descriptor.  A module matching the
naming pattern that defines no subclass (a new experiment that forgot to
register) makes discovery fail loudly — the registry smoke test turns that
into a CI failure.

The registry is the single source of truth for the unified CLI
(``python -m repro list|run|run-all|report``) and for the artifact
validation performed by the smoke-test harness.
"""

from __future__ import annotations

import importlib
import pkgutil
import re
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, List, Optional, Tuple, Type

import repro.experiments as _experiments_pkg
from repro.analysis.tables import ExperimentResult
from repro.experiments.common import (
    ArtifactSchema,
    ExperimentBase,
    ExperimentConfig,
    preset_config,
)

#: Module names matching this pattern must contribute a registered experiment.
EXPERIMENT_MODULE_PATTERN = re.compile(r"^(fig|table|sec)")


class RegistryError(ValueError):
    """An experiment module violates the registration contract."""


@dataclass(frozen=True)
class Experiment:
    """Declarative descriptor of one registered experiment."""

    id: str
    title: str
    artifact: str
    module: str
    cls: Type[ExperimentBase]
    schema: ArtifactSchema
    config_factory: Callable[[str], ExperimentConfig]

    def make_config(self, label: str = "full") -> ExperimentConfig:
        return self.config_factory(label)

    def run(
        self, config: Optional[ExperimentConfig] = None, **overrides
    ) -> ExperimentResult:
        return self.cls().run(config, **overrides)

    def validate_artifact(self, payload: dict) -> None:
        """Raise ``ValueError`` when an artifact payload violates the schema."""
        if payload.get("experiment_id") != self.id:
            raise ValueError(
                f"artifact names experiment {payload.get('experiment_id')!r}, "
                f"expected {self.id!r}"
            )
        self.schema.validate(payload)


def experiment_module_names() -> List[str]:
    """Every experiment module name under ``repro.experiments``."""
    return sorted(
        name
        for _, name, is_pkg in pkgutil.iter_modules(_experiments_pkg.__path__)
        if not is_pkg and EXPERIMENT_MODULE_PATTERN.match(name)
    )


def _harvest(module_name: str) -> Type[ExperimentBase]:
    qualified = f"repro.experiments.{module_name}"
    module = importlib.import_module(qualified)
    classes = [
        obj
        for obj in vars(module).values()
        if isinstance(obj, type)
        and issubclass(obj, ExperimentBase)
        and obj is not ExperimentBase
        and obj.__module__ == qualified
    ]
    if len(classes) != 1:
        raise RegistryError(
            f"experiment module {qualified} must define exactly one ExperimentBase "
            f"subclass, found {len(classes)}"
        )
    cls = classes[0]
    for attribute in ("experiment_id", "artifact", "title"):
        if not getattr(cls, attribute, ""):
            raise RegistryError(f"{qualified}.{cls.__name__} does not set {attribute!r}")
    return cls


@lru_cache(maxsize=1)
def _discover() -> Tuple[Experiment, ...]:
    experiments: List[Experiment] = []
    seen = {}
    for module_name in experiment_module_names():
        cls = _harvest(module_name)
        if cls.experiment_id in seen:
            raise RegistryError(
                f"duplicate experiment id {cls.experiment_id!r} "
                f"({seen[cls.experiment_id]} and {module_name})"
            )
        seen[cls.experiment_id] = module_name
        experiments.append(
            Experiment(
                id=cls.experiment_id,
                title=cls.title,
                artifact=cls.artifact,
                module=f"repro.experiments.{module_name}",
                cls=cls,
                schema=cls.schema,
                config_factory=preset_config,
            )
        )
    return tuple(sorted(experiments, key=lambda experiment: experiment.id))


def all_experiments() -> List[Experiment]:
    """Every registered experiment, sorted by id."""
    return list(_discover())


def experiment_ids() -> List[str]:
    return [experiment.id for experiment in _discover()]


def get(experiment_id: str) -> Experiment:
    """Look up one experiment by id; raises ``KeyError`` with suggestions."""
    for experiment in _discover():
        if experiment.id == experiment_id:
            return experiment
    known = ", ".join(experiment_ids())
    raise KeyError(f"unknown experiment {experiment_id!r} (known: {known})")
