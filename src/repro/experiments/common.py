"""Shared infrastructure for the experiment modules.

The heavy inputs of the evaluation — static profiles of kernels and the
trained regression model — are cached (in memory per process, and the model
on disk) so that the eighteen experiment modules can be run independently
without repeating work.  ``ExperimentConfig.fast()`` provides a scaled-down
setup for tests; ``ExperimentConfig.full()`` is used by the benchmark
harness and reproduces the paper-shaped results.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import ExperimentResult
from repro.core.inference import PoiseParameters
from repro.core.model_store import load_model, save_model
from repro.core.poise import PoiseController
from repro.core.training import TrainedModel, TrainingPipeline, TrainingThresholds
from repro.core.features import FeatureSampler
from repro.gpu.config import GPUConfig, baseline_config
from repro.gpu.gpu import GPU, RunResult
from repro.obs.telemetry import phase
from repro.profiling.metrics import harmonic_mean
from repro.profiling.profiler import KernelProfiler, StaticProfile
from repro.runtime import serialization
from repro.runtime.cache import DiskCache
from repro.runtime.executor import SweepExecutor
from repro.version import __version__
from repro.schedulers import (
    APCMPolicy,
    CCWSController,
    GTOController,
    PCALController,
    RandomRestartController,
    StaticBestController,
    SWLController,
)
from repro.workloads.generator import generate_kernel_programs
from repro.workloads.registry import (
    compute_intensive_benchmarks,
    evaluation_benchmarks,
    get_benchmark,
    training_benchmarks,
)
from repro.workloads.spec import BenchmarkSpec, KernelSpec

#: The schemes compared in the headline figures (Fig. 7/8/9/14).
EVALUATION_SCHEMES: Tuple[str, ...] = ("gto", "swl", "pcal", "poise", "static_best")

#: Every scheme name :func:`_build_controller` accepts — the single source of
#: truth the trace CLI and the scenario-grid validation check against.
KNOWN_SCHEMES: Tuple[str, ...] = (
    "gto", "swl", "pcal", "static_best", "ccws", "random_restart", "apcm",
    "poise", "poise_nosearch",
)

#: Default location of the pre-trained model shipped with the package (the
#: equivalent of the vendor-supplied feature weights of Table II).
PRETRAINED_MODEL_PATH = Path(__file__).resolve().parent.parent / "data" / "pretrained_model.json"

def default_cache_dir() -> Path:
    """Where freshly trained models and other artefacts are cached.

    Resolved at call time (not import time) so ``REPRO_CACHE_DIR`` changes
    made after the package is imported — e.g. by the CLI's ``--cache-dir``
    flag or by a test monkeypatching the environment — are honoured.
    """
    return Path(os.environ.get("REPRO_CACHE_DIR", Path.home() / ".cache" / "poise-repro"))


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs controlling experiment scale."""

    gpu: GPUConfig = field(default_factory=baseline_config)
    profile_cycles: int = 8_000
    profile_warmup: int = 18_000
    profile_n_step: int = 2
    profile_p_step: int = 2
    run_max_cycles: int = 160_000
    kernels_per_benchmark: int = 2
    training_kernels_per_benchmark: int = 10
    poise_params: PoiseParameters = field(
        default_factory=lambda: PoiseParameters(
            t_period=150_000, t_warmup=1_500, t_feature=6_000, t_search=2_000,
            threshold_cycles=6_000,
        )
    )
    feature_warmup: int = 1_500
    feature_cycles: int = 6_000
    training_min_speedup: Optional[float] = None  # defaults to the Poise threshold
    training_min_hit_rate: Optional[float] = None  # defaults to the Poise threshold
    model_path: Optional[Path] = None
    cache_dir: Path = field(default_factory=default_cache_dir)
    label: str = "full"

    # -- presets -------------------------------------------------------------------

    @classmethod
    def full(cls) -> "ExperimentConfig":
        """The configuration used by the benchmark harness."""
        return cls()

    @classmethod
    def fast(cls) -> "ExperimentConfig":
        """A heavily scaled-down configuration for unit/integration tests."""
        return cls(
            gpu=baseline_config(max_cycles=120_000),
            profile_cycles=5_000,
            profile_warmup=8_000,
            profile_n_step=4,
            profile_p_step=4,
            run_max_cycles=90_000,
            kernels_per_benchmark=1,
            training_kernels_per_benchmark=5,
            poise_params=PoiseParameters(
                t_period=30_000, t_warmup=1_000, t_feature=4_000, t_search=1_200,
                threshold_cycles=2_000,
            ),
            feature_warmup=1_000,
            feature_cycles=4_000,
            # The fast preset exists for structural tests, not learning quality:
            # admit every profiled kernel so tiny training sets still fit.
            training_min_speedup=1.0,
            training_min_hit_rate=-1.0,
            label="fast",
        )

    def with_gpu(self, gpu: GPUConfig) -> "ExperimentConfig":
        return replace(self, gpu=gpu)

    def with_poise_params(self, params: PoiseParameters) -> "ExperimentConfig":
        return replace(self, poise_params=params)

    @property
    def cache_key(self) -> str:
        """A short string identifying results produced under this config.

        Every run-affecting knob is folded in: two configs that differ only
        in ``run_max_cycles``, ``kernels_per_benchmark``, the feature-sampling
        window or the Poise parameters must not share cached ``RunResult``s.
        The Poise parameters are summarised by a content digest to keep the
        key readable, and the *entire* GPU configuration by another — the
        readable ``l1…`` tokens cover only the axes sweeps vary by name, so
        any other architecture change (``num_sms``, memory timings, a field
        added next year) must perturb the key through the digest (guarded by
        ``tests/test_graph_workloads.py``).
        """
        l1 = self.gpu.l1
        run_knobs = repr((self.poise_params, self.feature_warmup, self.feature_cycles))
        poise_digest = hashlib.sha256(run_knobs.encode("utf-8")).hexdigest()[:8]
        gpu_digest = hashlib.sha256(
            repr(serialization.gpu_payload(self.gpu)).encode("utf-8")
        ).hexdigest()[:8]
        return (
            f"{self.label}-l1{l1.size_bytes // 1024}k-{l1.indexing}"
            f"-pc{self.profile_cycles}-pw{self.profile_warmup}"
            f"-ns{self.profile_n_step}-ps{self.profile_p_step}"
            f"-rc{self.run_max_cycles}-kb{self.kernels_per_benchmark}"
            f"-pp{poise_digest}-g{gpu_digest}"
        )

    # -- helpers -------------------------------------------------------------------

    def profiler(self) -> KernelProfiler:
        return KernelProfiler(
            config=self.gpu,
            cycles_per_point=self.profile_cycles,
            warmup_cycles=self.profile_warmup,
            n_step=self.profile_n_step,
            p_step=self.profile_p_step,
        )

    def feature_sampler(self) -> FeatureSampler:
        return FeatureSampler(
            warmup_cycles=self.feature_warmup, sample_cycles=self.feature_cycles
        )

    def training_pipeline(self, feature_mask: Optional[Sequence[int]] = None) -> TrainingPipeline:
        return TrainingPipeline(
            config=self.gpu,
            profiler=self.profiler(),
            sampler=self.feature_sampler(),
            thresholds=TrainingThresholds(
                min_speedup=(
                    self.training_min_speedup
                    if self.training_min_speedup is not None
                    else self.poise_params.threshold_speedup
                ),
                min_cycles=min(self.poise_params.threshold_cycles, self.profile_cycles),
                min_reference_hit_rate=(
                    self.training_min_hit_rate
                    if self.training_min_hit_rate is not None
                    else self.poise_params.threshold_hit_rate
                ),
            ),
            scoring_weights=self.poise_params.scoring_weights,
            feature_mask=feature_mask,
        )

    def limited_kernels(self, benchmark: BenchmarkSpec, training: bool = False) -> List[KernelSpec]:
        limit = (
            self.training_kernels_per_benchmark if training else self.kernels_per_benchmark
        )
        return list(benchmark.kernels[:limit])

    def limited_benchmark(self, benchmark: BenchmarkSpec, training: bool = False) -> BenchmarkSpec:
        return replace(benchmark, kernels=self.limited_kernels(benchmark, training=training))


# ---------------------------------------------------------------------------
# Caches (per process memory + content-addressed disk)
# ---------------------------------------------------------------------------

_PROFILE_CACHE: Dict[Tuple[KernelSpec, str], StaticProfile] = {}
_RUN_CACHE: Dict[Tuple[str, KernelSpec, str, Optional[str]], RunResult] = {}
_MODEL_CACHE: Dict[str, TrainedModel] = {}


def _run_cache_key(
    scheme: str,
    spec: KernelSpec,
    config: ExperimentConfig,
    model: Optional[TrainedModel],
) -> Tuple[str, KernelSpec, str, Optional[str]]:
    """In-memory run-cache key.

    Keyed on the full (frozen, hashable) spec rather than its name: a
    captured-trace replay deliberately shares its source kernel's name, and
    two same-named specs must never share a cache slot.  Model-driven
    schemes fold in a digest of the weights: evaluating the same kernel
    under two different models in one process must not share a cache slot
    either (the disk layer already keys on the model; the memory layer has
    to agree).
    """
    model_tag = None
    if scheme.lower().startswith("poise") and model is not None:
        digest = repr(serialization.model_digest(model))
        model_tag = hashlib.sha256(digest.encode("utf-8")).hexdigest()[:12]
    return (scheme, spec, config.cache_key, model_tag)


def clear_caches(config: Optional[ExperimentConfig] = None) -> None:
    """Drop all per-process experiment caches (used by tests).

    When ``config`` is given its on-disk result cache is cleared as well.
    """
    _PROFILE_CACHE.clear()
    _RUN_CACHE.clear()
    _MODEL_CACHE.clear()
    _GRAPH_RUN_CACHE.clear()
    if config is not None:
        DiskCache(config.cache_dir).clear()


def disk_cache(config: ExperimentConfig) -> Optional[DiskCache]:
    """The on-disk result cache for ``config`` (``None`` when disabled).

    Set ``REPRO_DISK_CACHE=0`` to disable persistent result caching; the
    cache lives under ``config.cache_dir`` (``REPRO_CACHE_DIR``) in
    ``runs/<sha256>.json`` entries.
    """
    flag = os.environ.get("REPRO_DISK_CACHE", "1").strip().lower()
    if flag in ("0", "off", "false", "no"):
        return None
    return DiskCache(config.cache_dir)


def _profile_key_payload(spec: KernelSpec, config: ExperimentConfig) -> dict:
    return serialization.profile_key_payload(
        spec,
        config.gpu,
        config.profile_cycles,
        config.profile_warmup,
        config.profile_n_step,
        config.profile_p_step,
    )


def _run_key_payload(
    scheme: str,
    spec: KernelSpec,
    config: ExperimentConfig,
    model: Optional[TrainedModel],
) -> dict:
    """Everything that determines a scheme run's ``RunResult``."""
    scheme = scheme.lower()
    return {
        "kind": "run",
        "version": __version__,
        "code": serialization.code_fingerprint(),
        "scheme": scheme,
        "spec": serialization.spec_payload(spec),
        "gpu": serialization.gpu_payload(config.gpu),
        "run_max_cycles": config.run_max_cycles,
        "profile_knobs": [
            config.profile_cycles,
            config.profile_warmup,
            config.profile_n_step,
            config.profile_p_step,
        ],
        "poise_params": serialization.encode_value(asdict(config.poise_params)),
        "feature_window": [config.feature_warmup, config.feature_cycles],
        "model": serialization.model_digest(model if scheme.startswith("poise") else None),
    }


def get_profile(
    spec: KernelSpec, config: ExperimentConfig, use_cache: bool = True
) -> StaticProfile:
    """Profile a kernel over the warp-tuple grid, with memory + disk caching.

    ``use_cache=False`` computes the profile directly — no cache is read *or
    populated* — so an engine-pinned scenario point genuinely executes its
    profiling sweep on the named engine instead of inheriting (or seeding)
    the engine-agnostic caches.
    """
    if not use_cache:
        with phase("profile"):
            return config.profiler().profile(spec)
    key = (spec, config.cache_key)
    profile = _PROFILE_CACHE.get(key)
    if profile is not None:
        return profile
    disk = disk_cache(config)
    payload = _profile_key_payload(spec, config)
    if disk is not None:
        cached = disk.load(payload)
        if cached is not None:
            try:
                profile = serialization.profile_from_dict(cached)
            except (KeyError, TypeError, ValueError):
                profile = None  # malformed entry: fall through and recompute
    if profile is None:
        with phase("profile"):
            profile = config.profiler().profile(spec)
        if disk is not None:
            disk.store(payload, serialization.profile_to_dict(profile))
    _PROFILE_CACHE[key] = profile
    return profile


# ---------------------------------------------------------------------------
# Model training / loading
# ---------------------------------------------------------------------------

def train_model(
    config: ExperimentConfig, feature_mask: Optional[Sequence[int]] = None
) -> TrainedModel:
    """Train the regression on the training split (one-time, offline)."""
    pipeline = config.training_pipeline(feature_mask=feature_mask)
    benchmarks = [
        config.limited_benchmark(benchmark, training=True)
        for benchmark in training_benchmarks()
    ]
    with phase("train"):
        model, _ = pipeline.train(benchmarks)
    return model


def train_or_load_model(
    config: ExperimentConfig, feature_mask: Optional[Sequence[int]] = None
) -> TrainedModel:
    """Resolve the trained model for an experiment.

    Resolution order: an explicit ``config.model_path`` → the per-config disk
    cache → the packaged pre-trained model (only for unmasked, baseline-GPU
    configs) → train from scratch (and cache to disk).
    """
    mask_key = "none" if not feature_mask else "-".join(str(i) for i in sorted(feature_mask))
    cache_key = f"{config.cache_key}-mask{mask_key}"
    if cache_key in _MODEL_CACHE:
        return _MODEL_CACHE[cache_key]

    model: Optional[TrainedModel] = None
    if config.model_path is not None:
        model = load_model(config.model_path)
    else:
        disk_cache = config.cache_dir / f"model-{cache_key}.json"
        if disk_cache.exists():
            model = load_model(disk_cache)
        elif not feature_mask and PRETRAINED_MODEL_PATH.exists() and config.label == "full":
            model = load_model(PRETRAINED_MODEL_PATH)
        else:
            model = train_model(config, feature_mask=feature_mask)
            try:
                save_model(model, disk_cache)
            except OSError:
                pass  # caching is best-effort
    _MODEL_CACHE[cache_key] = model
    return model


# ---------------------------------------------------------------------------
# Scheme execution
# ---------------------------------------------------------------------------

def _build_controller(
    scheme: str,
    spec: KernelSpec,
    config: ExperimentConfig,
    model: Optional[TrainedModel],
    use_cache: bool = True,
):
    """Return (controller, cache_policy) for a scheme name."""
    scheme = scheme.lower()
    if scheme == "gto":
        return GTOController(), None
    if scheme == "swl":
        return SWLController(profile=get_profile(spec, config, use_cache=use_cache)), None
    if scheme == "pcal":
        return PCALController(profile=get_profile(spec, config, use_cache=use_cache)), None
    if scheme == "static_best":
        return StaticBestController(profile=get_profile(spec, config, use_cache=use_cache)), None
    if scheme == "ccws":
        return CCWSController(), None
    if scheme == "random_restart":
        return RandomRestartController(), None
    if scheme == "apcm":
        return GTOController(), APCMPolicy()
    if scheme in ("poise", "poise_nosearch"):
        if model is None:
            raise ValueError(f"scheme {scheme!r} requires a trained model")
        params = replace(
            config.poise_params,
            t_warmup=config.feature_warmup,
            t_feature=config.feature_cycles,
        )
        if scheme == "poise_nosearch":
            params = params.with_strides(0, 0)
        return PoiseController(model, params), None
    raise ValueError(f"unknown scheme {scheme!r}")


def run_scheme_on_kernel(
    scheme: str,
    spec: KernelSpec,
    config: ExperimentConfig,
    model: Optional[TrainedModel] = None,
    use_cache: bool = True,
) -> RunResult:
    """Run one kernel to completion (or the cycle budget) under a scheme.

    Results are cached in memory per process and, content-addressed, on
    disk — so a sweep worker's runs survive into the parent process and
    across invocations the way trained models already do.
    """
    key = _run_cache_key(scheme, spec, config, model)
    if use_cache and key in _RUN_CACHE:
        return _RUN_CACHE[key]
    disk = disk_cache(config) if use_cache else None
    payload = _run_key_payload(scheme, spec, config, model) if disk is not None else None
    if disk is not None:
        cached = disk.load(payload)
        if cached is not None:
            try:
                result = serialization.run_result_from_dict(cached)
            except (KeyError, TypeError, ValueError):
                result = None  # malformed entry: fall through and recompute
            if result is not None:
                _RUN_CACHE[key] = result
                return result
    controller, cache_policy = _build_controller(
        scheme, spec, config, model, use_cache=use_cache
    )
    gpu = GPU(config.gpu)
    programs = generate_kernel_programs(spec)
    with phase("simulate"):
        result = gpu.run_kernel(
            programs,
            controller=controller,
            max_cycles=config.run_max_cycles,
            cache_policy=cache_policy,
        )
    if use_cache:
        _RUN_CACHE[key] = result
        if disk is not None:
            disk.store(payload, serialization.run_result_to_dict(result))
    return result


def _run_scheme_job(
    scheme: str,
    spec: KernelSpec,
    config: ExperimentConfig,
    model: Optional[TrainedModel],
) -> RunResult:
    """Module-level sweep worker for one (scheme, kernel) run."""
    return run_scheme_on_kernel(scheme, spec, config, model=model, use_cache=True)


#: Schemes whose controller consumes a static profile of the kernel.
_PROFILE_BASED_SCHEMES = frozenset({"swl", "pcal", "static_best"})


def prefetch_runs(
    pairs: Sequence[Tuple[str, KernelSpec]],
    config: ExperimentConfig,
    model: Optional[TrainedModel] = None,
) -> None:
    """Fan missing (scheme, kernel) runs out over the sweep executor.

    After this returns, every pair is resident in the in-process run cache,
    so the serial aggregation code that follows only sees cache hits.  With
    ``REPRO_JOBS=1`` (the default) this is a no-op and the runs are computed
    lazily exactly as before — the counters are identical either way.
    """
    executor = SweepExecutor()
    seen: set = set()
    todo: List[Tuple[str, KernelSpec]] = []
    for scheme, spec in pairs:
        key = _run_cache_key(scheme, spec, config, model)
        if key in seen or key in _RUN_CACHE:
            continue
        seen.add(key)
        todo.append((scheme, spec))
    if not executor.parallel or len(todo) <= 1:
        return
    # Static profiles feed several controllers; compute them up front in this
    # process (their grid points fan out on the same executor) so the run
    # workers find them in the disk cache instead of each re-sweeping.  With
    # the disk cache disabled there is no channel to hand a profile to a
    # worker, so profile-based runs stay in this process (serial, but each
    # profile is swept exactly once) and only the rest fan out.
    profiles_shareable = disk_cache(config) is not None
    fan_out: List[Tuple[str, KernelSpec]] = []
    for scheme, spec in todo:
        if scheme.lower() in _PROFILE_BASED_SCHEMES:
            if not profiles_shareable:
                continue  # computed lazily in-process by the aggregation pass
            get_profile(spec, config)
        fan_out.append((scheme, spec))
    results = executor.map(
        _run_scheme_job, [(scheme, spec, config, model) for scheme, spec in fan_out]
    )
    for (scheme, spec), result in zip(fan_out, results):
        _RUN_CACHE[_run_cache_key(scheme, spec, config, model)] = result


@dataclass
class BenchmarkOutcome:
    """Aggregated result of one scheme over one benchmark."""

    benchmark: str
    scheme: str
    speedup: float
    ipc: float
    l1_hit_rate: float
    aml: float
    aml_ratio: float
    energy_uj: float
    energy_ratio: float
    kernel_results: Dict[str, RunResult] = field(default_factory=dict)
    telemetry: Dict[str, object] = field(default_factory=dict)


def run_scheme_on_benchmark(
    scheme: str,
    benchmark_name: str,
    config: ExperimentConfig,
    model: Optional[TrainedModel] = None,
    use_cache: bool = True,
) -> BenchmarkOutcome:
    """Run every (limited) kernel of a benchmark under a scheme and aggregate.

    Per-kernel speedups are relative to the GTO baseline run of the same
    kernel; the benchmark-level speedup is their harmonic mean, matching the
    aggregation used in the paper's per-benchmark bars.

    ``use_cache=False`` bypasses the memory and disk result caches for every
    run (baseline included) — the scenario runner uses this for points that
    pin a simulator engine, because the caches are engine-agnostic.
    """
    benchmark = get_benchmark(benchmark_name)
    kernels = config.limited_kernels(benchmark)
    pairs: List[Tuple[str, KernelSpec]] = [("gto", spec) for spec in kernels]
    if scheme != "gto":
        pairs.extend((scheme, spec) for spec in kernels)
    if use_cache:
        prefetch_runs(pairs, config, model=model)
    speedups: List[float] = []
    hit_rates: List[float] = []
    amls: List[float] = []
    aml_ratios: List[float] = []
    energies: List[float] = []
    energy_ratios: List[float] = []
    ipcs: List[float] = []
    kernel_results: Dict[str, RunResult] = {}
    telemetry: Dict[str, object] = {}

    for spec in kernels:
        baseline = run_scheme_on_kernel("gto", spec, config, use_cache=use_cache)
        result = (
            baseline
            if scheme == "gto"
            else run_scheme_on_kernel(scheme, spec, config, model=model, use_cache=use_cache)
        )
        kernel_results[spec.name] = result
        speedups.append(max(result.speedup_over(baseline), 1e-6))
        hit_rates.append(result.l1_hit_rate)
        amls.append(result.aml)
        aml_ratios.append(result.aml / baseline.aml if baseline.aml else 1.0)
        energies.append(result.energy.total_uj)
        energy_ratios.append(
            result.energy.total_pj / baseline.energy.total_pj
            if baseline.energy.total_pj
            else 1.0
        )
        ipcs.append(result.ipc)
        if result.telemetry:
            telemetry[spec.name] = result.telemetry

    count = max(1, len(kernels))
    return BenchmarkOutcome(
        benchmark=benchmark_name,
        scheme=scheme,
        speedup=harmonic_mean(speedups) if speedups else 1.0,
        ipc=sum(ipcs) / count,
        l1_hit_rate=sum(hit_rates) / count,
        aml=sum(amls) / count,
        aml_ratio=sum(aml_ratios) / count,
        energy_uj=sum(energies) / count,
        energy_ratio=sum(energy_ratios) / count,
        kernel_results=kernel_results,
        telemetry=telemetry,
    )


# ---------------------------------------------------------------------------
# DAG-structured kernel mixes
# ---------------------------------------------------------------------------

_GRAPH_RUN_CACHE: Dict[Tuple[str, str, str], "object"] = {}


def mix_graph_for_benchmark(benchmark_name: str, config: ExperimentConfig, mix: str):
    """The :class:`~repro.workloads.graph.KernelGraph` a ``kernel_mix`` axis
    value denotes: the benchmark's (limited) kernels, padded to at least two
    nodes with deterministic seed variants, arranged in the named shape."""
    from repro.workloads.graph import mix_graph

    benchmark = get_benchmark(benchmark_name)
    kernels = config.limited_kernels(benchmark)
    return mix_graph(kernels, mix, name=f"{benchmark_name}-{mix}")


def _graph_key_payload(graph, config: ExperimentConfig) -> dict:
    """Everything that determines a graph run's ``GraphRunResult``."""
    return {
        "kind": "graph-run",
        "version": __version__,
        "code": serialization.code_fingerprint(),
        "graph": graph.payload(),
        "gpu": serialization.gpu_payload(config.gpu),
        "run_max_cycles": config.run_max_cycles,
    }


def run_graph_for_config(
    graph, config: ExperimentConfig, use_cache: bool = True
):
    """Run a kernel graph on ``config.gpu``'s chip (memory + disk cached).

    The cycle budget is ``run_max_cycles`` per node, pooled, so serial
    chains get the same per-kernel budget a single-kernel run would.
    """
    key = (
        hashlib.sha256(
            repr(serialization.encode_value(graph.payload())).encode("utf-8")
        ).hexdigest()[:16],
        config.cache_key,
        "graph",
    )
    if use_cache and key in _GRAPH_RUN_CACHE:
        return _GRAPH_RUN_CACHE[key]
    disk = disk_cache(config) if use_cache else None
    payload = _graph_key_payload(graph, config) if disk is not None else None
    if disk is not None:
        cached = disk.load(payload)
        if cached is not None:
            try:
                result = serialization.graph_result_from_dict(cached)
            except (KeyError, TypeError, ValueError):
                result = None  # malformed entry: fall through and recompute
            if result is not None:
                _GRAPH_RUN_CACHE[key] = result
                return result
    gpu = GPU(config.gpu)
    budget = config.run_max_cycles * max(1, len(graph.nodes))
    with phase("simulate"):
        result = gpu.run_graph(graph, max_cycles=budget)
    if use_cache:
        _GRAPH_RUN_CACHE[key] = result
        if disk is not None:
            disk.store(payload, serialization.graph_result_to_dict(result))
    return result


def run_mix_on_benchmark(
    benchmark_name: str,
    config: ExperimentConfig,
    mix: str,
    use_cache: bool = True,
) -> BenchmarkOutcome:
    """Run a benchmark's ``kernel_mix`` graph and aggregate chip-level metrics.

    The reference is each node run *alone* on a single SM under GTO (the
    contention-free serial execution), so the outcome's ratios measure what
    the chip model adds: ``speedup`` is the co-scheduling speedup (serial
    reference cycles over graph makespan — above 1 when SM-level parallelism
    wins, below when memory contention eats it), ``aml_ratio`` and
    ``energy_ratio`` are contention inflation factors, and ``ipc`` is the
    chip-level aggregate (all instructions over the makespan).
    """
    graph = mix_graph_for_benchmark(benchmark_name, config, mix)
    graph_result = run_graph_for_config(graph, config, use_cache=use_cache)
    reference_config = (
        config
        if config.gpu.num_sms == 1
        else config.with_gpu(replace(config.gpu, num_sms=1))
    )
    reference_counters = None
    reference_cycles = 0
    reference_energy_pj = 0.0
    for node in graph.nodes:
        reference = run_scheme_on_kernel(
            "gto", node, reference_config, use_cache=use_cache
        )
        reference_cycles += reference.cycles
        reference_energy_pj += reference.energy.total_pj
        reference_counters = (
            reference.counters
            if reference_counters is None
            else reference_counters + reference.counters
        )
    aggregate = graph_result.aggregate
    makespan = graph_result.makespan
    energy_uj = sum(
        result.energy.total_uj for result in graph_result.node_results.values()
    )
    energy_pj = sum(
        result.energy.total_pj for result in graph_result.node_results.values()
    )
    reference_aml = reference_counters.aml if reference_counters is not None else 0.0
    return BenchmarkOutcome(
        benchmark=benchmark_name,
        scheme="gto",
        speedup=(reference_cycles / makespan) if makespan else 0.0,
        ipc=graph_result.aggregate_ipc,
        l1_hit_rate=aggregate.l1_hit_rate,
        aml=aggregate.aml,
        aml_ratio=(aggregate.aml / reference_aml) if reference_aml else 1.0,
        energy_uj=energy_uj,
        energy_ratio=(energy_pj / reference_energy_pj) if reference_energy_pj else 1.0,
        kernel_results=dict(graph_result.node_results),
        telemetry={
            "graph": {
                "mix": mix,
                "name": graph.name,
                "num_sms": graph_result.num_sms,
                "makespan": makespan,
                "completed": graph_result.completed,
                "schedule": [entry.as_dict() for entry in graph_result.schedule],
            }
        },
    )


def evaluate_schemes(
    schemes: Sequence[str],
    config: ExperimentConfig,
    benchmarks: Optional[Sequence[str]] = None,
    model: Optional[TrainedModel] = None,
) -> Dict[str, Dict[str, BenchmarkOutcome]]:
    """Run a set of schemes over the evaluation suite.

    Returns ``results[scheme][benchmark] -> BenchmarkOutcome``.
    """
    if benchmarks is None:
        benchmarks = [benchmark.name for benchmark in evaluation_benchmarks()]
    needs_model = any(s.startswith("poise") for s in schemes)
    if model is None and needs_model:
        model = train_or_load_model(config)
    # Fan the full (scheme, kernel) cross product out in one sweep so the
    # executor sees maximum parallelism; the per-benchmark aggregation below
    # then runs entirely against the warm run cache.
    suite_kernels = {name: config.limited_kernels(get_benchmark(name)) for name in benchmarks}
    pairs: List[Tuple[str, KernelSpec]] = [
        ("gto", spec) for name in benchmarks for spec in suite_kernels[name]
    ]
    for scheme in schemes:
        if scheme == "gto":
            continue
        pairs.extend((scheme, spec) for name in benchmarks for spec in suite_kernels[name])
    prefetch_runs(pairs, config, model=model)
    results: Dict[str, Dict[str, BenchmarkOutcome]] = {}
    for scheme in schemes:
        results[scheme] = {}
        for name in benchmarks:
            results[scheme][name] = run_scheme_on_benchmark(
                scheme, name, config, model=model
            )
    return results


def evaluation_benchmark_names() -> List[str]:
    return [benchmark.name for benchmark in evaluation_benchmarks()]


def compute_benchmark_names() -> List[str]:
    return [benchmark.name for benchmark in compute_intensive_benchmarks()]


# ---------------------------------------------------------------------------
# Experiment descriptors
# ---------------------------------------------------------------------------

def preset_config(label: str) -> ExperimentConfig:
    """Resolve a preset name (``fast``/``full``) to a configuration."""
    label = label.lower()
    if label == "fast":
        return ExperimentConfig.fast()
    if label == "full":
        return ExperimentConfig.full()
    raise ValueError(f"unknown configuration preset {label!r} (expected 'fast' or 'full')")


@dataclass(frozen=True)
class ArtifactSchema:
    """What a well-formed artifact of one experiment must contain.

    Deliberately structural rather than numeric: it checks that the emitted
    JSON has the tables and scalars the experiment promises (so a refactor
    that silently drops a series fails loudly), not that the values match
    the paper — that is the benchmark suite's job.
    """

    min_tables: int = 1
    required_scalars: Tuple[str, ...] = ()
    #: Case-insensitive fragments that must each match some table title.
    required_tables: Tuple[str, ...] = ()

    def validate(self, payload: Dict[str, object]) -> None:
        """Raise ``ValueError`` if an artifact payload violates the schema."""
        tables = payload.get("tables")
        if not isinstance(tables, list) or len(tables) < self.min_tables:
            found = len(tables) if isinstance(tables, list) else "none"
            raise ValueError(f"expected at least {self.min_tables} table(s), found {found}")
        titles = []
        for table in tables:
            if not isinstance(table, dict):
                raise ValueError("every table must be a JSON object")
            for key in ("title", "columns", "rows"):
                if key not in table:
                    raise ValueError(f"table is missing the {key!r} field")
            for row in table["rows"]:
                if len(row) != len(table["columns"]):
                    raise ValueError(
                        f"table {table['title']!r} has a row of width {len(row)} "
                        f"but {len(table['columns'])} columns"
                    )
            titles.append(str(table["title"]).lower())
        for fragment in self.required_tables:
            if not any(fragment.lower() in title for title in titles):
                raise ValueError(f"no table title matches {fragment!r}")
        scalars = payload.get("scalars")
        if not isinstance(scalars, dict):
            raise ValueError("artifact payload has no scalars object")
        missing = [name for name in self.required_scalars if name not in scalars]
        if missing:
            raise ValueError(f"missing required scalars: {', '.join(missing)}")


class ExperimentBase:
    """Base class every experiment module derives from.

    A subclass declares its identity (``experiment_id``, the paper
    ``artifact`` it reproduces, a human ``title``), an :class:`ArtifactSchema`
    for its output, and implements :meth:`build`.  The registry
    (:mod:`repro.experiments.registry`) discovers subclasses automatically;
    the per-module ``main()`` entry points are thin shims over :meth:`cli`.
    """

    #: Stable identifier, e.g. ``fig07`` — doubles as the CLI/artifact name.
    experiment_id: str = ""
    #: The paper artefact reproduced, e.g. ``Figure 7``.
    artifact: str = ""
    #: One-line human description.
    title: str = ""
    #: Structural expectations for the emitted artifact.
    schema: ArtifactSchema = ArtifactSchema()

    def build(self, config: ExperimentConfig, **overrides) -> "ExperimentResult":
        """Produce the experiment's result (implemented by subclasses)."""
        raise NotImplementedError

    def run(self, config: Optional[ExperimentConfig] = None, **overrides) -> "ExperimentResult":
        config = config or ExperimentConfig.full()
        return self.build(config, **overrides)

    @classmethod
    def cli(cls, argv: Optional[Sequence[str]] = None) -> int:
        """Stand-alone entry point: ``python -m repro.experiments.<module>``."""
        import argparse

        parser = argparse.ArgumentParser(description=f"{cls.artifact}: {cls.title}")
        scale = parser.add_mutually_exclusive_group()
        scale.add_argument(
            "--fast", action="store_true", help="use the scaled-down test configuration"
        )
        scale.add_argument(
            "--full", action="store_true", help="use the paper-shaped configuration (default)"
        )
        args = parser.parse_args(argv)
        config = preset_config("fast" if args.fast else "full")
        print(cls().run(config).to_text())
        return 0
