"""Fig. 11 — sensitivity of Poise to the local-search stride (εN, εp).

The paper sweeps the stride pairs (0,0), (1,1), (2,2), (2,4) and (4,4):
with no search at all Poise still beats SWL (harmonic-mean 1.23), and the
speedup grows and then saturates as the stride increases, with (2,4) the
best at 1.466.  The reproduction declares the sweep as a
:class:`~repro.scenarios.grid.ScenarioGrid` (``fig11-strides``) and reports
the per-benchmark and harmonic-mean speedups of its points.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.tables import ExperimentResult, Table
from repro.experiments.common import (
    ArtifactSchema,
    ExperimentBase,
    ExperimentConfig,
    evaluation_benchmark_names,
)
from repro.profiling.metrics import harmonic_mean
from repro.scenarios.library import FIG11_STRIDES, fig11_grid
from repro.scenarios.runner import evaluate_grid

DEFAULT_STRIDES: Tuple[Tuple[int, int], ...] = FIG11_STRIDES


class Fig11StrideSensitivity(ExperimentBase):
    experiment_id = "fig11"
    artifact = "Figure 11"
    title = "Sensitivity to local-search stride (εN, εp)"
    schema = ArtifactSchema(
        min_tables=1,
        required_scalars=tuple(f"hmean_{n}_{p}" for n, p in DEFAULT_STRIDES),
        required_tables=("per stride",),
    )

    def build(
        self,
        config: ExperimentConfig,
        strides: Optional[List[Tuple[int, int]]] = None,
        benchmarks: Optional[List[str]] = None,
    ) -> ExperimentResult:
        strides = [tuple(stride) for stride in (strides or DEFAULT_STRIDES)]
        benchmarks = list(benchmarks or evaluation_benchmark_names())
        grid = fig11_grid(strides=strides, benchmarks=benchmarks)
        speedup = {
            (point.benchmark, point.poise_strides): metrics["speedup"]
            for point, metrics in evaluate_grid(grid, config).items()
        }

        experiment = ExperimentResult(
            experiment_id="fig11",
            description="Sensitivity to local-search stride (εN, εp)",
        )
        table = experiment.add_table(
            Table(
                title="Fig. 11 — IPC normalised to GTO per stride",
                columns=["benchmark"] + [f"({n},{p})" for n, p in strides],
            )
        )
        per_stride: dict = {stride: [] for stride in strides}
        for name in benchmarks:
            row = [name]
            for stride in strides:
                value = speedup[(name, stride)]
                row.append(value)
                per_stride[stride].append(max(value, 1e-6))
            table.add_row(*row)
        hmean_row = ["H-Mean"] + [harmonic_mean(per_stride[stride]) for stride in strides]
        table.add_row(*hmean_row)
        for stride, value in zip(strides, hmean_row[1:]):
            experiment.scalars[f"hmean_{stride[0]}_{stride[1]}"] = value
        experiment.add_note(
            "Paper harmonic means: (0,0) 1.23, (1,1) 1.436, (2,2) 1.457, (2,4) 1.466, (4,4) 1.45."
        )
        return experiment


def run(
    config: Optional[ExperimentConfig] = None,
    strides: Optional[List[Tuple[int, int]]] = None,
) -> ExperimentResult:
    return Fig11StrideSensitivity().run(config, strides=strides)


def main() -> None:
    Fig11StrideSensitivity.cli()


if __name__ == "__main__":
    main()
